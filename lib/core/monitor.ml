open Riscv

type config = {
  shared_vcpu : bool;
  long_path : bool;
  validate_shared_on_entry : bool;
  tlb_retention : bool;
}

let default_config =
  {
    shared_vcpu = true;
    long_path = false;
    validate_shared_on_entry = false;
    tlb_retention = false;
  }

type exit_reason =
  | Exit_timer
  | Exit_limit
  | Exit_mmio of Vcpu.mmio
  | Exit_shared_fault of int64
  | Exit_need_memory of { bytes : int64 }
  | Exit_shutdown
  | Exit_error of string

(* Saved Normal-mode context of one hart while a CVM occupies it. *)
type host_ctx = {
  mutable h_satp : int64;
  mutable h_hgatp : int64;
  mutable h_medeleg : int64;
  mutable h_mideleg : int64;
  mutable h_hedeleg : int64;
  mutable h_hideleg : int64;
  mutable h_mode : Priv.t;
  mutable h_pc : int64;
}

(* One end of a crash-safe migration session (see Migrate_proto). The
   record lives in the SM so it survives crashes of the untrusted
   courier endpoints: recovery re-derives everything from here. *)
type migration_role = Mig_out | Mig_in
type migration_phase = Mig_active | Mig_committed | Mig_aborted

type migration_session = {
  mg_role : migration_role;
  mutable mg_phase : migration_phase;
  mutable mg_cvm : int option;
  mutable mg_epoch : int;
  mutable mg_nonce : string;
      (* export nonce, fixed for the session's lifetime so recovery
         re-exports byte-identical chunks *)
  mutable mg_blob_tag : string;  (* SHA-256 of the sealed blob *)
  mutable mg_stalls : int;
      (* consecutive unacknowledged retransmits, maintained by the
         protocol endpoint; audited against the budget *)
  mg_budget : int;
}

(* One attested inter-CVM channel: a secure ring page the SM maps into
   both endpoints' private halves once each side has verified the
   other's attestation report. The record is the ownership ground truth
   for the ring page (channel pages never enter [page_owner]): the
   audit's channel section derives every invariant from here. *)
type chan_phase =
  | Chan_offered  (** granted, ring allocated, nothing mapped yet *)
  | Chan_established  (** both sides verified; ring live in both SPTs *)
  | Chan_revoked  (** torn down by an endpoint or an endpoint's death *)
  | Chan_degraded  (** torn down by the SM: strike budget exhausted *)

type channel = {
  ch_id : int;
  ch_a : int;  (** granting endpoint (owns the a→b half) *)
  ch_b : int;  (** accepting endpoint (owns the b→a half) *)
  mutable ch_phase : chan_phase;
  mutable ch_page : int64 option;
      (** ring page PA while the channel holds its block *)
  ch_gpa : int64;  (** slot GPA, identical in both private halves *)
  ch_epoch_a : int;
  ch_epoch_b : int;
      (** endpoint lifecycle epochs captured at the offer; [chan_accept]
          refuses if either endpoint has transitioned since — a stale
          pre-migration report cannot establish a channel *)
  mutable ch_seq_ab : int64;  (** last a→b seq delivered to b *)
  mutable ch_seq_ba : int64;  (** last b→a seq delivered to a *)
  mutable ch_strikes : int;
  mutable ch_reason : string option;
}

type t = {
  machine : Machine.t;
  cfg : config;
  cost : Cost.t;
  sm : Secmem.t;
  guard : Pmp_guard.t;
  trace : Metrics.Trace.t;
  registry : Metrics.Registry.t;
  cvms : (int, Cvm.t) Hashtbl.t;
  sessions : (string, migration_session) Hashtbl.t;
      (** keyed by "out:<id>" / "in:<id>" so one monitor can hold both
          ends of a loopback migration *)
  journal : Journal.t;
      (** write-ahead intent journal: every multi-step transition below
          records an intent before its first durable mutation, so
          [recover] can roll a crashed operation forward or back *)
  mutable next_cvm_id : int;
  channels : (int, channel) Hashtbl.t;
  mutable next_chan_id : int;
      (** channel ids double as slot indices in the channel GPA window,
          so they are never reused — recovery bumps past journaled ids *)
  host : host_ctx array;
  pending_mmio : (int * int, Vcpu.mmio) Hashtbl.t;
  expand_retry : (int * int, unit) Hashtbl.t;
      (** vCPUs whose next private fault is a stage-3 retry *)
  staged_reg : (int * int, int * int64) Hashtbl.t;
      (** SET_REG value awaiting Check-after-Load, unshared mode *)
  page_owner : (int64, int) Hashtbl.t;
      (** physical page -> CVM id: the exclusivity ground truth *)
  freed_pages : (int, int64 list ref) Hashtbl.t;
      (** per-CVM pages returned by the guest (relinquish), reused before
          the page cache *)
  vcpu_seal : (int * int, int64) Hashtbl.t;
      (** (CVM id, vCPU) -> checksum of the secure vCPU taken at the last
          legitimate SM write; [audit] recomputes and compares *)
  mutable entry_hist : int list;
  mutable exit_hist : int list;
  mutable faults : (Hier_alloc.stage * int) list;
  mutable rand_counter : int;
  mutable profiler : Metrics.Profile.t option;
  last_seen : (int, int) Hashtbl.t;
      (** CVM id -> ledger cycles at its last world-switch progress
          (entry or exit); the telemetry plane's stall detector *)
}

let create ?(config = default_config) machine =
  let nharts = Array.length machine.Machine.harts in
  let ledger = machine.Machine.ledger in
  let trace =
    Metrics.Trace.create ~clock:(fun () -> Metrics.Ledger.now ledger) ()
  in
  let t =
    {
      machine;
      cfg = config;
      cost = machine.Machine.cost;
      sm = Secmem.create ();
      guard = Pmp_guard.create ~trace ();
      trace;
      registry = Metrics.Registry.create ();
      cvms = Hashtbl.create 16;
      sessions = Hashtbl.create 8;
      journal = Journal.create ();
      next_cvm_id = 1;
      channels = Hashtbl.create 8;
      next_chan_id = 1;
      host =
        Array.init nharts (fun _ ->
            {
              h_satp = 0L;
              h_hgatp = 0L;
              h_medeleg = Deleg_policy.normal_medeleg;
              h_mideleg = Deleg_policy.normal_mideleg;
              h_hedeleg = Deleg_policy.normal_hedeleg;
              h_hideleg = Deleg_policy.normal_hideleg;
              h_mode = Priv.HS;
              h_pc = 0L;
            });
      pending_mmio = Hashtbl.create 8;
      expand_retry = Hashtbl.create 8;
      staged_reg = Hashtbl.create 8;
      page_owner = Hashtbl.create 1024;
      freed_pages = Hashtbl.create 8;
      vcpu_seal = Hashtbl.create 8;
      entry_hist = [];
      exit_hist = [];
      faults = [];
      rand_counter = 0;
      profiler = None;
      last_seen = Hashtbl.create 8;
    }
  in
  (* Boot-time setup: normal delegation and an all-open PMP backdrop so
     Normal mode works before any secure region exists. *)
  Array.iter
    (fun hart ->
      Deleg_policy.apply_normal hart;
      ignore (Pmp_guard.sync_hart t.guard hart t.sm ~cvm_open:false);
      hart.Hart.mode <- Priv.HS)
    machine.Machine.harts;
  (* The IOPMP runs with a permissive default over normal memory;
     standing deny entries cover each secure region as it registers. *)
  Iopmp.allow_all_default (Bus.iopmp machine.Machine.bus) true;
  t

let machine t = t.machine
let config t = t.cfg
let secmem t = t.sm
let ledger t = t.machine.Machine.ledger
let charge t cat cycles = Metrics.Ledger.charge (ledger t) cat cycles
let trace t = t.trace
let registry t = t.registry

(* Observability is recorded only while the flight recorder is switched
   on, so the disabled-path cost of every instrumentation site below is
   one load and branch. *)
let obs t = Metrics.Trace.is_enabled t.trace

(* ---------- guest PC-sampling profiler ---------- *)

let enable_profiler ?interval t =
  let p =
    match (t.profiler, interval) with
    | Some p, None -> p
    | Some p, Some i when Metrics.Profile.interval p = i -> p
    | _ ->
        let p =
          Metrics.Profile.create ?interval
            ~nharts:(Array.length t.machine.Machine.harts) ()
        in
        t.profiler <- Some p;
        p
  in
  Exec.profile := Some p

let disable_profiler _t = Exec.profile := None
let profiler t = t.profiler

(* ---------- per-tenant health rollups ---------- *)

type tenant_health = {
  th_cvm : int;
  th_state : string;
  th_entries : int;
  th_exits : int;
  th_switch_rate : float;
  th_request_p50 : float;
  th_request_p99 : float;
  th_faults : int;
  th_quarantined : bool;
  th_quarantine_reason : string option;
  th_stalled : bool;
  th_last_progress : int;
  th_io_kicks_suppressed : int;
  th_io_coalesced : int;
  th_io_cal_rejections : int;
  th_io_fallbacks : int;
  th_chan_grants : int;
  th_chan_accepts : int;
  th_chan_revokes : int;
  th_chan_peer_rejects : int;
  th_chan_degradations : int;
}

type health = {
  h_now : int;
  h_cvms : tenant_health list;
  h_total_switches : int;
  h_internal_faults : int;
}

let health_snapshot ?(stall_cycles = 10_000_000) ?(clock_hz = 1e8) t =
  let now = Metrics.Ledger.now (ledger t) in
  let seconds = float_of_int now /. clock_hz in
  let quantile id name p =
    match
      Metrics.Registry.histogram ~scope:(Metrics.Registry.Cvm id) t.registry
        name
    with
    | Some h when Metrics.Histogram.count h > 0 -> Metrics.Histogram.quantile h p
    | _ -> 0.
  in
  let tenants =
    Hashtbl.fold
      (fun id (cvm : Cvm.t) acc ->
        let live =
          match cvm.Cvm.state with
          | Cvm.Runnable | Cvm.Running | Cvm.Suspended -> true
          | _ -> false
        in
        let last = Hashtbl.find_opt t.last_seen id in
        let stalled =
          live
          &&
          match last with
          | Some seen -> now - seen > stall_cycles
          | None -> false
        in
        {
          th_cvm = id;
          th_state = Cvm.state_to_string cvm.Cvm.state;
          th_entries = cvm.Cvm.entry_count;
          th_exits = cvm.Cvm.exit_count;
          th_switch_rate =
            (if seconds > 0. then float_of_int cvm.Cvm.exit_count /. seconds
             else 0.);
          th_request_p50 = quantile id "request_cycles" 50.;
          th_request_p99 = quantile id "request_cycles" 99.;
          th_faults = cvm.Cvm.fault_count;
          th_quarantined = cvm.Cvm.state = Cvm.Quarantined;
          th_quarantine_reason = cvm.Cvm.quarantine_reason;
          th_stalled = stalled;
          th_last_progress = (match last with Some c -> c | None -> -1);
          th_io_kicks_suppressed =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.io.kicks_suppressed";
          th_io_coalesced =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.io.completions_coalesced";
          th_io_cal_rejections =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.io.cal_rejections";
          th_io_fallbacks =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.io.fallbacks";
          th_chan_grants =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.chan.grants";
          th_chan_accepts =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.chan.accepts";
          th_chan_revokes =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.chan.revokes";
          th_chan_peer_rejects =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.chan.peer_rejects";
          th_chan_degradations =
            Metrics.Registry.counter ~scope:(Metrics.Registry.Cvm id)
              t.registry "sm.chan.degradations";
        }
        :: acc)
      t.cvms []
    |> List.sort (fun a b -> compare a.th_cvm b.th_cvm)
  in
  {
    h_now = now;
    h_cvms = tenants;
    h_total_switches =
      List.fold_left (fun acc th -> acc + th.th_exits) 0 tenants;
    h_internal_faults = Metrics.Registry.counter t.registry "sm.internal_fault";
  }

let exit_reason_label = function
  | Exit_timer -> "timer"
  | Exit_limit -> "limit"
  | Exit_mmio _ -> "mmio"
  | Exit_shared_fault _ -> "shared_fault"
  | Exit_need_memory _ -> "need_memory"
  | Exit_shutdown -> "shutdown"
  | Exit_error _ -> "error"

(* Record an internal fault the ABI boundary absorbed. Counted even with
   the flight recorder off: a hardened SM never loses sight of these. *)
let internal_fault t name e =
  Metrics.Registry.inc t.registry "sm.internal_fault";
  if obs t then
    Metrics.Trace.instant t.trace
      ~args:[ ("site", name); ("exn", Printexc.to_string e) ]
      "sm.internal_fault";
  Error (Ecall.Internal (Printexc.to_string e))

(* The host-interface ABI boundary: span + counter around one ecall, and
   the totality guard — no exception may escape to the hypervisor. *)
let host_call t name ?cvm f =
  let observing = obs t in
  let ev = "ecall." ^ name in
  if observing then begin
    Metrics.Trace.span_begin t.trace ?cvm ev;
    Metrics.Registry.inc t.registry ev
  end;
  (* The injected SM death is not an internal fault: it models the whole
     monitor dying, so it must escape the ABI boundary to the reboot
     driver instead of being absorbed into an error reply. *)
  let r =
    try f () with
    | Journal.Crashed as c -> raise c
    | e -> internal_fault t name e
  in
  if observing then begin
    let status =
      match r with Ok _ -> "ok" | Error e -> Ecall.error_to_string e
    in
    Metrics.Trace.span_end t.trace ?cvm ~args:[ ("status", status) ] ev
  end;
  r

let find_cvm t id = Hashtbl.find_opt t.cvms id

(* Precise cross-hart shootdown: drop one VMID's translations from every
   hart's TLB — the VMID-tagged hfence.gvma. Used wherever a whole
   guest-physical space dies at once (destroy, quarantine, migrate-out
   commit): any hart may hold retained entries for the CVM, and those
   must not outlive its pages. Charged per hart actually fenced. *)
let shootdown_vmid t ~vmid ~reason =
  let harts = t.machine.Machine.harts in
  Array.iter
    (fun hart ->
      Tlb.flush_vmid hart.Hart.tlb vmid;
      Hart.invalidate_fast_path hart)
    harts;
  charge t "sm_shootdown"
    (Array.length harts * t.cost.Cost.tlb_vmid_flush);
  if obs t then begin
    Metrics.Registry.inc t.registry ~by:(Array.length harts)
      "tlb.vmid_flush";
    Metrics.Trace.instant t.trace
      ~args:[ ("vmid", string_of_int vmid); ("reason", reason) ]
      "tlb.shootdown"
  end

(* ---------- channel plumbing ---------- *)

let chan_max_strikes = 3

let find_channel t id = Hashtbl.find_opt t.channels id

let chan_live ch =
  match ch.ch_phase with
  | Chan_offered | Chan_established -> true
  | Chan_revoked | Chan_degraded -> false

let chan_endpoint_live (cvm : Cvm.t) =
  match cvm.Cvm.state with
  | Cvm.Runnable | Cvm.Running | Cvm.Suspended -> true
  | _ -> false

let chan_counter t ~cvm name =
  Metrics.Registry.inc t.registry ~scope:(Metrics.Registry.Cvm cvm) name

(* Idempotent channel teardown: drop the slot mapping from both
   endpoints, scrub the ring page, shoot it down precisely on both
   VMIDs, and return the block to the pool. Recovery and the
   destroy/quarantine sweeps re-run this from any torn intermediate
   state, so every step tolerates having already happened. [record],
   when given, interleaves the checkpoints that make the intermediate
   states reachable crash points. *)
let chan_teardown ?record t ch ~phase ~reason =
  if chan_live ch then begin
    let ckpt label =
      match record with
      | Some r -> Journal.checkpoint t.journal r label
      | None -> ()
    in
    (match ch.ch_page with
     | None -> ()
     | Some pa ->
         let unmap id =
           match find_cvm t id with
           | Some cvm when cvm.Cvm.state <> Cvm.Destroyed -> (
               (* Only drop the slot while it still points at the ring:
                  a destroyed endpoint's tables are already reclaimed
                  memory and must not be written. *)
               match Spt.lookup cvm.Cvm.spt ~gpa:ch.ch_gpa with
               | Some pa' when pa' = pa ->
                   ignore (Spt.unmap_private cvm.Cvm.spt ~gpa:ch.ch_gpa)
               | _ -> ())
           | _ -> ()
         in
         unmap ch.ch_a;
         unmap ch.ch_b;
         ckpt "chan-unmapped";
         Physmem.zero_range
           (Bus.dram t.machine.Machine.bus)
           (Int64.sub pa Bus.dram_base)
           (Int64.of_int Layout.chan_ring_size);
         charge t "sm_scrub" t.cost.Cost.page_scrub;
         (* Either endpoint may retain the translation on any hart:
            shoot the page down precisely, scoped per VMID. *)
         let harts = t.machine.Machine.harts in
         Array.iter
           (fun hart ->
             Tlb.flush_pa ~vmid:ch.ch_a hart.Hart.tlb pa;
             Tlb.flush_pa ~vmid:ch.ch_b hart.Hart.tlb pa;
             Hart.invalidate_fast_path hart)
           harts;
         charge t "sm_shootdown"
           (2 * Array.length harts * t.cost.Cost.tlb_vmid_flush);
         ckpt "chan-scrubbed";
         if not (Secmem.is_free_base t.sm pa) then
           ignore (Hier_alloc.reclaim_base t.sm ~base:pa);
         ch.ch_page <- None);
    ch.ch_phase <- phase;
    ch.ch_reason <- Some reason;
    if obs t then
      Metrics.Trace.instant t.trace
        ~args:[ ("chan", string_of_int ch.ch_id); ("reason", reason) ]
        "chan.teardown"
  end

(* Implicit revoke: every live channel touching [id] dies with it. Runs
   inside the caller's journal window (destroy, quarantine, migrate-out
   commit), so replaying the enclosing record re-runs the sweep. *)
let chan_sweep_for ?record t id ~reason =
  Hashtbl.iter
    (fun _ ch ->
      if chan_live ch && (ch.ch_a = id || ch.ch_b = id) then begin
        chan_teardown ?record t ch ~phase:Chan_revoked ~reason;
        chan_counter t ~cvm:id "sm.chan.revokes"
      end)
    t.channels

(* ---------- vCPU seals and quarantine ---------- *)

(* FNV-1a over the architectural fields. Not cryptographic — the host
   cannot address secure vCPU memory at all; the seal catches SM logic
   errors and simulation-harness tampering, and [audit] verifies it. *)
let vcpu_checksum (sv : Vcpu.secure) =
  let h = ref 0xcbf29ce484222325L in
  let mix v = h := Int64.mul (Int64.logxor !h v) 0x100000001b3L in
  Array.iter mix sv.Vcpu.regs;
  mix sv.Vcpu.pc;
  mix sv.Vcpu.vsstatus;
  mix sv.Vcpu.vstvec;
  mix sv.Vcpu.vsscratch;
  mix sv.Vcpu.vsepc;
  mix sv.Vcpu.vscause;
  mix sv.Vcpu.vstval;
  mix sv.Vcpu.vsatp;
  mix sv.Vcpu.hvip;
  mix (Int64.of_int sv.Vcpu.generation);
  !h

let seal_vcpu t cvm idx =
  Hashtbl.replace t.vcpu_seal (cvm.Cvm.id, idx)
    (vcpu_checksum (Cvm.vcpu cvm idx))

let seal_all_vcpus t cvm =
  for i = 0 to Cvm.nvcpus cvm - 1 do
    seal_vcpu t cvm i
  done

(* A host protocol violation: park the CVM in [Quarantined] (only
   destruction is accepted from there) and disown the hypervisor's
   shared subtree so the hostile mappings drop out of the CVM's
   guest-physical space. *)
let quarantine t cvm ~reason =
  if cvm.Cvm.state <> Cvm.Destroyed && cvm.Cvm.state <> Cvm.Quarantined
  then begin
    let jr =
      Journal.append t.journal
        (Journal.Op_quarantine { cvm = cvm.Cvm.id; reason })
    in
    cvm.Cvm.state <- Cvm.Quarantined;
    cvm.Cvm.quarantine_reason <- Some reason;
    Journal.checkpoint t.journal jr "parked";
    Spt.clear_shared_root cvm.Cvm.spt;
    (* The CVM will never legitimately run again, so no hart may keep
       translating its guest-physical space. *)
    shootdown_vmid t ~vmid:cvm.Cvm.id ~reason:"quarantine";
    (* A quarantined endpoint also forfeits its channels: the peer must
       not keep a window into a parked, possibly-hostile VM. *)
    chan_sweep_for ~record:jr t cvm.Cvm.id ~reason:"endpoint quarantined";
    Metrics.Registry.inc t.registry "cvm.quarantined";
    if obs t then
      Metrics.Trace.instant t.trace ~cvm:cvm.Cvm.id
        ~args:[ ("reason", reason) ]
        "cvm.quarantine";
    Journal.mark_done t.journal jr
  end

let quarantine_reason t ~cvm:id =
  Option.bind (find_cvm t id) (fun c -> c.Cvm.quarantine_reason)

(* ---------- path-cost compositions (see DESIGN.md §5) ---------- *)

type mmio_kind = No_mmio | Shared_mmio | Unshared_mmio

let long_path_entry_extra c =
  c.Cost.sechyp_trap + c.Cost.sechyp_xret + c.Cost.sechyp_ctx
  + c.Cost.sechyp_dispatch_entry + c.Cost.sechyp_barrier

let long_path_exit_extra c =
  c.Cost.sechyp_trap + c.Cost.sechyp_xret + c.Cost.sechyp_ctx
  + c.Cost.sechyp_dispatch_exit + c.Cost.sechyp_barrier

(* [pmp]/[tlb_flush] record the work the switch actually performed: a
   skipped PMP toggle (epoch cache) or a retained TLB costs nothing.
   The defaults describe the steady-state path of the configured mode,
   so [path_cost] stays honest in both. *)
let entry_cost ?(pmp = true) ?tlb_flush t ~mmio ~validated_ptes =
  let c = t.cost in
  let tlb_flush =
    match tlb_flush with
    | Some f -> f
    | None -> not t.cfg.tlb_retention
  in
  let base =
    c.Cost.trap_entry + c.Cost.gpr_all + c.Cost.csr_ctx_host
    + c.Cost.deleg_reprogram
    + (if pmp then c.Cost.pmp_toggle else 0)
    + c.Cost.hgatp_write
    + (if tlb_flush then c.Cost.tlb_full_flush else 0)
    + c.Cost.csr_ctx_guest + c.Cost.gpr_all
    + c.Cost.vcpu_integrity + c.Cost.irq_scan + c.Cost.timer_prog
    + c.Cost.xret
  in
  let mmio_extra =
    match mmio with
    | No_mmio -> 0
    | Shared_mmio ->
        (4 * (c.Cost.shared_item_load + c.Cost.check_after_load))
        + c.Cost.resume_merge
    | Unshared_mmio ->
        (2 * c.Cost.ecall_roundtrip)
        + (6 * c.Cost.secure_copy_item)
        + c.Cost.resume_merge
  in
  let long = if t.cfg.long_path then long_path_entry_extra c else 0 in
  base + mmio_extra + long + (validated_ptes * 2)

let exit_cost ?(pmp = true) ?tlb_flush t ~mmio =
  let c = t.cost in
  let tlb_flush =
    match tlb_flush with
    | Some f -> f
    | None -> not t.cfg.tlb_retention
  in
  let base =
    c.Cost.trap_entry + c.Cost.gpr_all + c.Cost.csr_ctx_guest
    + c.Cost.exit_cause_decode
    + (if pmp then c.Cost.pmp_toggle else 0)
    + c.Cost.hgatp_write
    + (if tlb_flush then c.Cost.tlb_full_flush else 0)
    + c.Cost.gpr_all + c.Cost.csr_ctx_host
    + c.Cost.deleg_reprogram + c.Cost.xret
  in
  let mmio_extra =
    match mmio with
    | No_mmio -> 0
    | Shared_mmio -> (4 * c.Cost.shared_item_store) + c.Cost.shared_classify
    | Unshared_mmio ->
        c.Cost.ecall_roundtrip
        + (8 * c.Cost.secure_copy_item)
        + c.Cost.unshared_validate
  in
  let long = if t.cfg.long_path then long_path_exit_extra c else 0 in
  base + mmio_extra + long

let fault_base_cost c =
  c.Cost.trap_entry + c.Cost.sm_fault_decode + c.Cost.sm_fault_validate
  + c.Cost.page_cache_alloc + c.Cost.page_scrub + (3 * c.Cost.page_walk_step)
  + c.Cost.gstage_map + c.Cost.sm_fault_bookkeeping + c.Cost.xret

let fault_cost t stage =
  let c = t.cost in
  match stage with
  | Hier_alloc.Stage1 -> fault_base_cost c
  | Hier_alloc.Stage2 -> fault_base_cost c + c.Cost.block_grab
  | Hier_alloc.Stage3_retry ->
      fault_base_cost c + c.Cost.block_grab
      + exit_cost t ~mmio:No_mmio
      + entry_cost t ~mmio:No_mmio ~validated_ptes:0
      + c.Cost.expand_host_work + c.Cost.pmp_toggle + c.Cost.pmp_toggle
      + c.Cost.tlb_full_flush

(* ---------- host interface ---------- *)

let register_secure_region_impl t ~base ~size =
  let bus = t.machine.Machine.bus in
  let last = Int64.add base (Int64.sub size 1L) in
  if not (Bus.in_dram bus base && Bus.in_dram bus last) then
    Error Ecall.Invalid_param
  else begin
    let jr = Journal.append t.journal (Journal.Op_expand { base; size }) in
    match Secmem.register_region t.sm ~base ~size with
    | Error _ ->
        Journal.mark_done t.journal jr;
        Error Ecall.Invalid_param
    | Ok blocks ->
        Journal.checkpoint t.journal jr "linked";
        (match
           let synced = ref 0 in
           Array.iter
             (fun hart ->
               if Pmp_guard.sync_hart t.guard hart t.sm ~cvm_open:false
               then incr synced)
             t.machine.Machine.harts;
           !synced
         with
        | synced ->
            let nharts = Array.length t.machine.Machine.harts in
            Pmp_guard.guard_iopmp t.guard (Bus.iopmp bus) t.sm;
            (* Per-hart PMP resync + IOPMP programming + the mandatory
               global fence on every hart (the paper keeps region
               registration a full-flush point). Charged per hart so
               the ledger agrees with the registry's flush count. *)
            charge t "sm_region_setup"
              ((synced * t.cost.Cost.pmp_toggle) + t.cost.Cost.pmp_toggle
              + (nharts * t.cost.Cost.tlb_full_flush));
            Array.iter
              (fun hart ->
                Tlb.flush_all hart.Hart.tlb;
                Hart.invalidate_fast_path hart)
              t.machine.Machine.harts;
            if obs t then
              Metrics.Registry.inc t.registry ~by:nharts "tlb.full_flush";
            Journal.mark_done t.journal jr;
            Ok blocks
        | exception Invalid_argument _ ->
            Journal.mark_done t.journal jr;
            Error Ecall.Invalid_param)
  end

let register_secure_region t ~base ~size =
  host_call t "register_secure_region" (fun () ->
      register_secure_region_impl t ~base ~size)

(* Allocate one 4 KiB secure page for page tables, growing the CVM's
   table-block list as needed. *)
let alloc_table_page t table_blocks () =
  let take () =
    match !table_blocks with
    | blk :: _ -> Secmem.block_take_page blk
    | [] -> None
  in
  match take () with
  | Some p -> Some p
  | None -> begin
      match Secmem.alloc_block t.sm with
      | None -> None
      | Some blk ->
          table_blocks := blk :: !table_blocks;
          Secmem.block_take_page blk
    end

(* Cap matches the migration format's plausibility bound. *)
let max_nvcpus = 64

let create_cvm_impl t ~nvcpus ~entry_pc =
  if nvcpus <= 0 || nvcpus > max_nvcpus then Error Ecall.Invalid_param
  else begin
    (* Journal the intent against the block the pop below will return
       (single-threaded SM: nothing moves the list head in between), so
       recovery can find the orphaned block if we die mid-build. *)
    match Secmem.peek_block_base t.sm with
    | None -> Error Ecall.No_memory
    | Some block_base -> (
        let id = t.next_cvm_id in
        let jr =
          Journal.append t.journal
            (Journal.Op_create { cvm = id; block_base; nvcpus })
        in
        t.next_cvm_id <- id + 1;
        (* The Sv39x4 root needs 16 KiB, 16 KiB-aligned: take the first
           four pages of a fresh block (blocks are 256 KiB-aligned). *)
        match Secmem.alloc_block t.sm with
        | None ->
            (* unreachable: the peek above saw a free block *)
            Journal.mark_done t.journal jr;
            Error Ecall.No_memory
        | Some blk ->
            Journal.checkpoint t.journal jr "block";
            let root = Secmem.block_base blk in
            for _ = 1 to 4 do
              ignore (Secmem.block_take_page blk)
            done;
            let table_blocks = ref [ blk ] in
            let spt =
              Spt.create ~bus:t.machine.Machine.bus ~root
                ~alloc_table_page:(alloc_table_page t table_blocks)
            in
            let cvm = Cvm.create ~id ~nvcpus ~entry_pc ~spt ~table_blocks in
            Hashtbl.replace t.cvms id cvm;
            Journal.checkpoint t.journal jr "registered";
            seal_all_vcpus t cvm;
            charge t "sm_cvm_create"
              (t.cost.Cost.page_scrub * 4 (* zero the root *)
              + t.cost.Cost.block_grab);
            Journal.mark_done t.journal jr;
            Ok id)
  end

let create_cvm t ~nvcpus ~entry_pc =
  host_call t "create_cvm" (fun () -> create_cvm_impl t ~nvcpus ~entry_pc)

(* Allocate and map one private page; returns its physical address.
   Pages the guest relinquished earlier are reused first — they are the
   cheapest source, equivalent to a page-cache hit. *)
let take_freed t cvm_id =
  match Hashtbl.find_opt t.freed_pages cvm_id with
  | Some ({ contents = pa :: rest } as r) ->
      r := rest;
      Some pa
  | Some { contents = [] } | None -> None

let provide_private_page t cvm cache ~gpa ~after_expand =
  let alloc_outcome =
    match take_freed t cvm.Cvm.id with
    | Some pa ->
        Hashtbl.remove t.page_owner pa;
        Hier_alloc.Allocated
          (pa, if after_expand then Hier_alloc.Stage3_retry else Hier_alloc.Stage1)
    | None -> Hier_alloc.allocate ~trace:t.trace t.sm cache ~after_expand
  in
  match alloc_outcome with
  | Hier_alloc.Need_expand -> Error `Need_expand
  | Hier_alloc.Allocated (pa, stage) -> begin
      (* Exclusivity: a page may back exactly one CVM. *)
      (match Hashtbl.find_opt t.page_owner pa with
      | Some owner ->
          invalid_arg
            (Printf.sprintf
               "SM invariant violated: page 0x%Lx already owned by CVM %d" pa
               owner)
      | None -> ());
      Physmem.zero_range
        (Bus.dram t.machine.Machine.bus)
        (Int64.sub pa Bus.dram_base) 4096L;
      match Spt.map_private cvm.Cvm.spt ~gpa ~pa ~writable:true with
      | Error e -> Error (`Map_error e)
      | Ok () ->
          Hashtbl.replace t.page_owner pa cvm.Cvm.id;
          Ok (pa, stage)
    end

let load_image_impl t ~cvm:id ~gpa data =
  match find_cvm t id with
  | None -> Error Ecall.Not_found
  | Some cvm when cvm.Cvm.state = Cvm.Quarantined -> Error Ecall.Quarantined
  | Some cvm when cvm.Cvm.state <> Cvm.Created -> Error Ecall.Bad_state
  | Some cvm ->
      if Int64.rem gpa 4096L <> 0L || not (Layout.is_private_gpa gpa) then
        Error Ecall.Invalid_param
      else begin
        let bus = t.machine.Machine.bus in
        let cache = Cvm.cache cvm 0 in
        let len = String.length data in
        let npages = (len + 4095) / 4096 in
        (* The payload lives in untrusted memory and is not journaled: a
           crash mid-load leaves a torn measurement, so recovery rolls
           the whole Created CVM back and the host retries from scratch.
           A completed load (even one that returned an error) marks the
           record done — the state it left is well-defined. *)
        let jr =
          Journal.append t.journal (Journal.Op_load { cvm = id; gpa; npages })
        in
        let rec go page =
          if page >= npages then Ok ()
          else begin
            let page_gpa = Int64.add gpa (Int64.of_int (page * 4096)) in
            let chunk =
              String.sub data (page * 4096) (min 4096 (len - (page * 4096)))
            in
            let target =
              match Spt.lookup cvm.Cvm.spt ~gpa:page_gpa with
              | Some pa -> Ok pa
              | None -> begin
                  match
                    provide_private_page t cvm cache ~gpa:page_gpa
                      ~after_expand:false
                  with
                  | Ok (pa, _) -> Ok pa
                  | Error `Need_expand -> Error Ecall.No_memory
                  | Error (`Map_error _) -> Error Ecall.Invalid_param
                end
            in
            match target with
            | Error e -> Error e
            | Ok pa ->
                Bus.write_bytes bus pa chunk;
                (match cvm.Cvm.measurement_ctx with
                | Some m -> Attest.extend m ~gpa:page_gpa chunk
                | None -> ());
                Journal.checkpoint t.journal jr
                  (Printf.sprintf "page:%d" page);
                go (page + 1)
          end
        in
        let result = go 0 in
        Journal.mark_done t.journal jr;
        result
      end

let load_image t ~cvm ~gpa data =
  host_call t "load_image" ~cvm (fun () -> load_image_impl t ~cvm ~gpa data)

let finalize_cvm t ~cvm:id =
  host_call t "finalize_cvm" ~cvm:id (fun () ->
      match find_cvm t id with
      | None -> Error Ecall.Not_found
      | Some cvm when cvm.Cvm.state = Cvm.Quarantined ->
          Error Ecall.Quarantined
      | Some cvm -> begin
          match (cvm.Cvm.state, cvm.Cvm.measurement_ctx) with
          | Cvm.Created, Some m ->
              let digest = Attest.seal m in
              cvm.Cvm.measurement <- Some digest;
              cvm.Cvm.measurement_ctx <- None;
              cvm.Cvm.state <- Cvm.Runnable;
              (* Stall-detection baseline: runnable-but-never-entered
                 counts as progress from this moment. *)
              Hashtbl.replace t.last_seen id (Metrics.Ledger.now (ledger t));
              Ok digest
          | _ -> Error Ecall.Bad_state
        end)

let install_shared t ~cvm:id ~table_pa =
  host_call t "install_shared" ~cvm:id (fun () ->
      match find_cvm t id with
      | None -> Error Ecall.Not_found
      | Some cvm when cvm.Cvm.state = Cvm.Quarantined ->
          Error Ecall.Quarantined
      | Some cvm ->
          (* The subtree root must be a real normal-memory page before
             the SM writes it into the CVM's root table; a wild pointer
             would make every later walk fault inside the SM. *)
          if
            Int64.rem table_pa 4096L <> 0L
            || not (Bus.in_dram t.machine.Machine.bus table_pa)
          then Error Ecall.Invalid_address
          else begin
            match
              Spt.install_shared_root cvm.Cvm.spt
                ~is_secure:(Secmem.contains t.sm) ~table_pa
            with
            | Ok () -> Ok ()
            | Error _ -> Error Ecall.Denied
          end)

(* The destroy state machine, factored so recovery can replay it: every
   step is idempotent (a second pass scrubs zero pages, frees zero
   blocks, flips no counter), so a crash anywhere inside converges by
   simply running it again. [record], when given, receives progress
   checkpoints — the crash points a sweep visits. *)
let destroy_replay ?record t cvm =
  let id = cvm.Cvm.id in
  let ckpt label =
    match record with
    | Some r -> Journal.checkpoint t.journal r label
    | None -> ()
  in
  let bus = t.machine.Machine.bus in
  let was_destroyed = cvm.Cvm.state = Cvm.Destroyed in
  (* Channels die first, while both endpoints' page tables are still
     intact: the teardown's unmap writes table pages that the block
     scrubbing below is about to reclaim. *)
  chan_sweep_for ?record t id ~reason:"endpoint destroyed";
  (* Scrub every owned page, drop ownership, return blocks. *)
  Hashtbl.iter
    (fun pa owner ->
      if owner = id then begin
        Physmem.zero_range (Bus.dram bus) (Int64.sub pa Bus.dram_base)
          4096L;
        charge t "sm_scrub" t.cost.Cost.page_scrub
      end)
    t.page_owner;
  Hashtbl.filter_map_inplace
    (fun _ owner -> if owner = id then None else Some owner)
    t.page_owner;
  (* Unlink the hypervisor subtree while the root table is still
     live, then scrub and return every block. *)
  Spt.clear_shared_root cvm.Cvm.spt;
  ckpt "scrubbed";
  List.iter
    (fun blk ->
      ignore
        (Hier_alloc.scrub_free
           ~zero:(fun ~base ~bytes ->
             Physmem.zero_range (Bus.dram bus)
               (Int64.sub base Bus.dram_base)
               bytes)
           t.sm blk))
    (Cvm.owned_blocks cvm);
  (* Drop every stale reference to the recycled blocks: the page
     caches, the table-block list, and the relinquished-page pool.
     Without this a destroyed CVM's cache still aliases blocks the
     next CVM may own (reuse-after-destroy). *)
  Array.iter Page_cache.reset cvm.Cvm.caches;
  cvm.Cvm.table_blocks := [];
  Hashtbl.remove t.freed_pages id;
  cvm.Cvm.state <- Cvm.Destroyed;
  if not was_destroyed then Metrics.Registry.inc t.registry "cvm.destroyed";
  ckpt "reclaimed";
  (* Every hart that ever ran this CVM may retain translations into
     the just-freed blocks; without this shootdown the next owner of
     those blocks inherits them (covers migrate_out_commit too,
     which destroys through here). *)
  shootdown_vmid t ~vmid:id ~reason:"destroy";
  for v = 0 to Cvm.nvcpus cvm - 1 do
    Hashtbl.remove t.pending_mmio (id, v);
    Hashtbl.remove t.staged_reg (id, v);
    Hashtbl.remove t.expand_retry (id, v);
    Hashtbl.remove t.vcpu_seal (id, v)
  done;
  (* A migration session whose CVM disappears under it can never
     complete: fold it to Aborted so the ownership audit stays
     truthful. [migrate_out_commit] marks its session Committed
     *before* destroying, so the legitimate handoff is untouched. *)
  Hashtbl.iter
    (fun _ s ->
      if s.mg_phase = Mig_active && s.mg_cvm = Some id then
        s.mg_phase <- Mig_aborted)
    t.sessions

let destroy_cvm_impl t ~cvm:id =
  match find_cvm t id with
  | None -> Error Ecall.Not_found
  (* Double-destroy must not reach the free list: the blocks were
     already reinserted once and a second [free_block] would corrupt
     the allocator every CVM shares. *)
  | Some cvm when cvm.Cvm.state = Cvm.Destroyed -> Error Ecall.Bad_state
  | Some cvm ->
      let jr = Journal.append t.journal (Journal.Op_destroy { cvm = id }) in
      destroy_replay ~record:jr t cvm;
      Journal.mark_done t.journal jr;
      Ok ()

let destroy_cvm t ~cvm =
  host_call t "destroy_cvm" ~cvm (fun () -> destroy_cvm_impl t ~cvm)

let next_random t =
  t.rand_counter <- t.rand_counter + 1;
  let h =
    Attest.hmac_sha256 ~key:Attest.platform_key
      (Printf.sprintf "rng:%d" t.rand_counter)
  in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code h.[i]))
  done;
  !v

(* ---------- attested inter-CVM channels ---------- *)

(* The ring page layout (see Layout): two directional halves, each
   [seq:u64][len:u64][payload]. The owner of a half bumps seq after
   writing payload+len; the SM keeps the last *delivered* seq per
   direction as its shadow, so Check-after-Load at consume time never
   trusts a header field it has not bounded. *)

let chan_runaway_bound = 0x100000L
(* A producer may run ahead of deliveries, but not by 2^20 messages:
   past that the seq is garbage, not backlog. *)

let chan_dir_base ch ~from_a =
  match ch.ch_page with
  | None -> invalid_arg "chan_dir_base: channel holds no ring page"
  | Some pa ->
      if from_a then pa else Int64.add pa (Int64.of_int Layout.chan_dir_off)

(* Generate [cvm]'s attestation report over [nonce], MAC-bound to its
   current lifecycle epoch. *)
let chan_report (cvm : Cvm.t) ~measurement ~nonce =
  Attest.make_report ~cvm_id:cvm.Cvm.id ~epoch:cvm.Cvm.epoch ~measurement
    ~nonce

let chan_grant_impl t ~cvm:a_id ~peer:b_id ~nonce ~expect =
  if not (Attest.valid_nonce nonce) then Error Ecall.Invalid_param
  else if a_id = b_id then Error Ecall.Invalid_param
  else
    match (find_cvm t a_id, find_cvm t b_id) with
    | None, _ | _, None -> Error Ecall.Not_found
    | Some a, Some b -> (
        if a.Cvm.state = Cvm.Quarantined || b.Cvm.state = Cvm.Quarantined
        then Error Ecall.Quarantined
        else if not (chan_endpoint_live a && chan_endpoint_live b) then
          Error Ecall.Bad_state
        else
          match (a.Cvm.measurement, b.Cvm.measurement) with
          | None, _ | _, None -> Error Ecall.Bad_state
          | Some _, Some mb ->
              (* The granter's admission policy: nothing is allocated
                 for a peer whose current measurement is not the one the
                 granter expects. *)
              if not (Attest.constant_time_eq mb expect) then begin
                chan_counter t ~cvm:a_id "sm.chan.peer_rejects";
                Error Ecall.Denied
              end
              else if t.next_chan_id >= Layout.chan_slots then
                Error Ecall.No_memory
              else (
                match Secmem.peek_block_base t.sm with
                | None -> Error Ecall.No_memory
                | Some block_base -> (
                    let id = t.next_chan_id in
                    let jr =
                      Journal.append t.journal
                        (Journal.Op_chan_grant
                           { chan = id; a = a_id; b = b_id; block_base })
                    in
                    t.next_chan_id <- id + 1;
                    match Secmem.alloc_block t.sm with
                    | None ->
                        (* unreachable: the peek above saw a free block *)
                        Journal.mark_done t.journal jr;
                        Error Ecall.No_memory
                    | Some blk ->
                        Journal.checkpoint t.journal jr "block";
                        let pa = Secmem.block_base blk in
                        Physmem.zero_range
                          (Bus.dram t.machine.Machine.bus)
                          (Int64.sub pa Bus.dram_base)
                          (Int64.of_int Layout.chan_ring_size);
                        charge t "sm_chan"
                          (t.cost.Cost.block_grab + t.cost.Cost.page_scrub);
                        let ch =
                          {
                            ch_id = id;
                            ch_a = a_id;
                            ch_b = b_id;
                            ch_phase = Chan_offered;
                            ch_page = Some pa;
                            ch_gpa = Layout.chan_slot_gpa id;
                            ch_epoch_a = a.Cvm.epoch;
                            ch_epoch_b = b.Cvm.epoch;
                            ch_seq_ab = 0L;
                            ch_seq_ba = 0L;
                            ch_strikes = 0;
                            ch_reason = None;
                          }
                        in
                        Hashtbl.replace t.channels id ch;
                        Journal.checkpoint t.journal jr "registered";
                        chan_counter t ~cvm:a_id "sm.chan.grants";
                        if obs t then
                          Metrics.Trace.instant t.trace ~cvm:a_id
                            ~args:
                              [
                                ("chan", string_of_int id);
                                ("peer", string_of_int b_id);
                              ]
                            "chan.grant";
                        Journal.mark_done t.journal jr;
                        (* The peer's report over the granter's nonce,
                           bound to the peer's current epoch: the
                           granter verifies it before telling its guest
                           the channel id. *)
                        Ok (id, chan_report b ~measurement:mb ~nonce))))

let chan_grant t ~cvm ~peer ~nonce ~expect =
  host_call t "chan_grant" ~cvm (fun () ->
      chan_grant_impl t ~cvm ~peer ~nonce ~expect)

let chan_accept_impl t ~chan ~cvm:b_id ~nonce ~expect =
  if not (Attest.valid_nonce nonce) then Error Ecall.Invalid_param
  else
    match find_channel t chan with
    | None -> Error Ecall.Not_found
    | Some ch -> (
        if ch.ch_b <> b_id then Error Ecall.Denied
        else
          match ch.ch_phase with
          | Chan_established | Chan_revoked | Chan_degraded ->
              Error Ecall.Bad_state
          | Chan_offered -> (
              match (find_cvm t ch.ch_a, find_cvm t ch.ch_b) with
              | None, _ | _, None -> Error Ecall.Not_found
              | Some a, Some b -> (
                  if
                    a.Cvm.state = Cvm.Quarantined
                    || b.Cvm.state = Cvm.Quarantined
                  then Error Ecall.Quarantined
                  else if not (chan_endpoint_live a && chan_endpoint_live b)
                  then Error Ecall.Bad_state
                  else
                    match (a.Cvm.measurement, b.Cvm.measurement) with
                    | None, _ | _, None -> Error Ecall.Bad_state
                    | Some ma, Some _ ->
                        (* Freshness: the offer's attestation evidence
                           is only as current as the endpoints' epochs.
                           Any lifecycle transition since (a migrate-out
                           lock or release) makes the offer stale, so a
                           pre-migration report cannot be replayed to
                           establish a channel. *)
                        if
                          a.Cvm.epoch <> ch.ch_epoch_a
                          || b.Cvm.epoch <> ch.ch_epoch_b
                        then begin
                          chan_counter t ~cvm:b_id "sm.chan.peer_rejects";
                          Error Ecall.Denied
                        end
                        else if not (Attest.constant_time_eq ma expect)
                        then begin
                          chan_counter t ~cvm:b_id "sm.chan.peer_rejects";
                          Error Ecall.Denied
                        end
                        else
                          let pa =
                            match ch.ch_page with
                            | Some pa -> pa
                            | None -> assert false (* offered holds a page *)
                          in
                          (* The slot must be free in both private
                             halves: a demand-paged page at the slot GPA
                             would alias a mapping the guest already
                             relies on. *)
                          if
                            Spt.lookup a.Cvm.spt ~gpa:ch.ch_gpa <> None
                            || Spt.lookup b.Cvm.spt ~gpa:ch.ch_gpa <> None
                          then Error Ecall.Already_exists
                          else begin
                            let jr =
                              Journal.append t.journal
                                (Journal.Op_chan_accept { chan })
                            in
                            match
                              Spt.map_private a.Cvm.spt ~gpa:ch.ch_gpa ~pa
                                ~writable:true
                            with
                            | Error _ ->
                                Journal.mark_done t.journal jr;
                                Error Ecall.No_memory
                            | Ok () -> (
                                Journal.checkpoint t.journal jr "map-a";
                                match
                                  Spt.map_private b.Cvm.spt ~gpa:ch.ch_gpa
                                    ~pa ~writable:true
                                with
                                | Error _ ->
                                    ignore
                                      (Spt.unmap_private a.Cvm.spt
                                         ~gpa:ch.ch_gpa);
                                    Journal.mark_done t.journal jr;
                                    Error Ecall.No_memory
                                | Ok () ->
                                    Journal.checkpoint t.journal jr "map-b";
                                    ch.ch_phase <- Chan_established;
                                    ch.ch_seq_ab <- 0L;
                                    ch.ch_seq_ba <- 0L;
                                    ch.ch_strikes <- 0;
                                    charge t "sm_chan"
                                      (2 * t.cost.Cost.gstage_map);
                                    chan_counter t ~cvm:b_id
                                      "sm.chan.accepts";
                                    if obs t then
                                      Metrics.Trace.instant t.trace
                                        ~cvm:b_id
                                        ~args:
                                          [ ("chan", string_of_int chan) ]
                                        "chan.accept";
                                    Journal.mark_done t.journal jr;
                                    Ok (chan_report a ~measurement:ma ~nonce))
                          end)))

let chan_accept t ~chan ~cvm ~nonce ~expect =
  host_call t "chan_accept" ~cvm (fun () ->
      chan_accept_impl t ~chan ~cvm ~nonce ~expect)

let chan_revoke_impl t ~chan ~cvm:id =
  match find_channel t chan with
  | None -> Error Ecall.Not_found
  | Some ch ->
      if ch.ch_a <> id && ch.ch_b <> id then Error Ecall.Denied
      else if not (chan_live ch) then Ok () (* idempotent *)
      else begin
        let jr =
          Journal.append t.journal
            (Journal.Op_chan_revoke { chan; degraded = false })
        in
        chan_teardown ~record:jr t ch ~phase:Chan_revoked
          ~reason:"revoked by endpoint";
        chan_counter t ~cvm:id "sm.chan.revokes";
        Journal.mark_done t.journal jr;
        Ok ()
      end

let chan_revoke t ~chan ~cvm =
  host_call t "chan_revoke" ~cvm (fun () -> chan_revoke_impl t ~chan ~cvm)

(* PR 8's Byzantine discipline aimed at a hostile *peer*: one strike per
   rejected header field; at the budget the channel — never the CVM —
   is one-way degraded (journaled, scrubbed, unmapped, block
   reclaimed). *)
let chan_strike t ch ~victim verdict =
  ch.ch_strikes <- ch.ch_strikes + 1;
  chan_counter t ~cvm:victim "sm.chan.peer_rejects";
  if obs t then
    Metrics.Trace.instant t.trace ~cvm:victim
      ~args:[ ("chan", string_of_int ch.ch_id); ("verdict", verdict) ]
      "chan.cal_reject";
  if ch.ch_strikes >= chan_max_strikes && chan_live ch then begin
    let jr =
      Journal.append t.journal
        (Journal.Op_chan_revoke { chan = ch.ch_id; degraded = true })
    in
    chan_teardown ~record:jr t ch ~phase:Chan_degraded
      ~reason:(Printf.sprintf "strike budget exhausted (%s)" verdict);
    chan_counter t ~cvm:victim "sm.chan.degradations";
    Journal.mark_done t.journal jr
  end

(* Check-after-Load over one peer-writable directional half: load seq
   and len exactly once, bound them against the SM's shadow, and only
   then classify. *)
type chan_msg = Chan_idle | Chan_msg of int64 * int | Chan_bad of string

let chan_check_dir t ch ~from_a ~shadow =
  let bus = t.machine.Machine.bus in
  let base = chan_dir_base ch ~from_a in
  let seq = Bus.read bus base 8 in
  let len = Bus.read bus (Int64.add base 8L) 8 in
  charge t "sm_chan" (2 * t.cost.Cost.check_after_load);
  if seq = shadow then Chan_idle
  else if Xword.ult seq shadow then Chan_bad "seq_rewind"
  else if Xword.ult (Int64.add shadow chan_runaway_bound) seq then
    Chan_bad "seq_runaway"
  else if len < 1L || len > Int64.of_int Layout.chan_max_msg then
    Chan_bad "bad_len"
  else Chan_msg (seq, Int64.to_int len)

(* Host-driveable watchdog: validate both halves' headers without
   delivering anything. Returns [Ok true] while the channel stays live,
   [Ok false] once it is dead (now or before) — degradation is not an
   error, it is the one-way outcome the host polls for. *)
let chan_poll_impl t ~chan =
  match find_channel t chan with
  | None -> Error Ecall.Not_found
  | Some ch ->
      if not (chan_live ch) then Ok false
      else begin
        if ch.ch_phase = Chan_established then begin
          (match chan_check_dir t ch ~from_a:true ~shadow:ch.ch_seq_ab with
          | Chan_bad v -> chan_strike t ch ~victim:ch.ch_b v
          | Chan_idle | Chan_msg _ -> ());
          if chan_live ch then
            match chan_check_dir t ch ~from_a:false ~shadow:ch.ch_seq_ba with
            | Chan_bad v -> chan_strike t ch ~victim:ch.ch_a v
            | Chan_idle | Chan_msg _ -> ()
        end;
        Ok (chan_live ch)
      end

let chan_poll t ~chan = host_call t "chan_poll" (fun () -> chan_poll_impl t ~chan)

type chan_info = {
  ci_id : int;
  ci_a : int;
  ci_b : int;
  ci_phase : string;
  ci_gpa : int64;
  ci_page : int64 option;
  ci_strikes : int;
  ci_reason : string option;
}

let chan_phase_to_string = function
  | Chan_offered -> "offered"
  | Chan_established -> "established"
  | Chan_revoked -> "revoked"
  | Chan_degraded -> "degraded"

let chan_info t ~chan =
  Option.map
    (fun ch ->
      {
        ci_id = ch.ch_id;
        ci_a = ch.ch_a;
        ci_b = ch.ch_b;
        ci_phase = chan_phase_to_string ch.ch_phase;
        ci_gpa = ch.ch_gpa;
        ci_page = ch.ch_page;
        ci_strikes = ch.ch_strikes;
        ci_reason = ch.ch_reason;
      })
    (find_channel t chan)

let chan_list t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.channels []
  |> List.sort compare
  |> List.filter_map (fun id -> chan_info t ~chan:id)

(* ---------- migration ---------- *)

let vcpu_to_image (sv : Vcpu.secure) =
  {
    Migrate.vi_regs = Array.copy sv.Vcpu.regs;
    vi_pc = sv.Vcpu.pc;
    vi_csrs =
      [|
        sv.Vcpu.vsstatus; sv.Vcpu.vstvec; sv.Vcpu.vsscratch; sv.Vcpu.vsepc;
        sv.Vcpu.vscause; sv.Vcpu.vstval; sv.Vcpu.vsatp; sv.Vcpu.hvip;
      |];
  }

let image_to_vcpu (vi : Migrate.vcpu_image) (sv : Vcpu.secure) =
  Array.blit vi.Migrate.vi_regs 0 sv.Vcpu.regs 0 32;
  sv.Vcpu.pc <- vi.Migrate.vi_pc;
  (match vi.Migrate.vi_csrs with
  | [| a; b; c; d; e; f; g; h |] ->
      sv.Vcpu.vsstatus <- a;
      sv.Vcpu.vstvec <- b;
      sv.Vcpu.vsscratch <- c;
      sv.Vcpu.vsepc <- d;
      sv.Vcpu.vscause <- e;
      sv.Vcpu.vstval <- f;
      sv.Vcpu.vsatp <- g;
      sv.Vcpu.hvip <- h
  | _ -> invalid_arg "image_to_vcpu: bad CSR image")

(* Snapshot a CVM into a migration image: every secure vCPU, the sealed
   measurement, and all mapped private pages. The caller has already
   checked the state. *)
let snapshot_image t cvm =
  let bus = t.machine.Machine.bus in
  let pages =
    Spt.fold_private cvm.Cvm.spt
      (fun ~gpa ~pa acc -> (gpa, Bus.read_bytes bus pa 4096) :: acc)
      []
  in
  (* Per-page crypto work dominates the export path. *)
  charge t "sm_migrate" (List.length pages * t.cost.Cost.page_scrub);
  {
    Migrate.im_vcpus = Array.to_list (Array.map vcpu_to_image cvm.Cvm.vcpus);
    im_measurement = Option.value ~default:"" cvm.Cvm.measurement;
    im_pages = List.rev pages;
  }

(* Fresh, unpredictable-to-the-host export nonce from the SM's DRBG. *)
let fresh_export_nonce t =
  Printf.sprintf "%Ld:%Ld" (next_random t) (next_random t)

let export_cvm_impl t ~cvm:id =
  match find_cvm t id with
  | None -> Error Ecall.Not_found
  | Some cvm -> begin
      match cvm.Cvm.state with
      | Cvm.Quarantined -> Error Ecall.Quarantined
      | Cvm.Running | Cvm.Created | Cvm.Destroyed
      | Cvm.Migrating_out | Cvm.Migrating_in ->
          Error Ecall.Bad_state
      | Cvm.Runnable | Cvm.Suspended ->
          Ok (Migrate.seal ~nonce:(fresh_export_nonce t) (snapshot_image t cvm))
    end

let export_cvm t ~cvm =
  host_call t "export_cvm" ~cvm (fun () -> export_cvm_impl t ~cvm)

(* Rebuild a CVM from a verified image into fresh secure memory, landing
   it in [state] ([Suspended] for the one-shot path, [Migrating_in] for
   a 2PC prepare). Rolls the half-built CVM back on any failure.
   [on_created] fires the moment the empty CVM exists — the caller's
   journal record learns the id there, so a crash mid-restore can still
   find and scrub the half-built instance. *)
let build_cvm_from_image ?on_created t im ~state =
  let nvcpus = List.length im.Migrate.im_vcpus in
  match create_cvm t ~nvcpus ~entry_pc:0L with
  | Error e -> Error e
  | Ok id -> begin
      (match on_created with Some f -> f id | None -> ());
      let cvm =
        match find_cvm t id with Some c -> c | None -> assert false
      in
      let bus = t.machine.Machine.bus in
      let cache = Cvm.cache cvm 0 in
      let rec restore = function
        | [] -> Ok ()
        | (gpa, data) :: rest -> begin
            match
              provide_private_page t cvm cache ~gpa ~after_expand:false
            with
            | Ok (pa, _) ->
                Bus.write_bytes bus pa data;
                restore rest
            | Error `Need_expand ->
                (* roll back the half-built CVM *)
                ignore (destroy_cvm_impl t ~cvm:id);
                Error Ecall.No_memory
            | Error (`Map_error _) ->
                ignore (destroy_cvm_impl t ~cvm:id);
                Error Ecall.Invalid_param
          end
      in
      match restore im.Migrate.im_pages with
      | Error e -> Error e
      | Ok () ->
          List.iteri
            (fun i vi -> image_to_vcpu vi (Cvm.vcpu cvm i))
            im.Migrate.im_vcpus;
          seal_all_vcpus t cvm;
          cvm.Cvm.measurement <-
            (if im.Migrate.im_measurement = "" then None
             else Some im.Migrate.im_measurement);
          cvm.Cvm.measurement_ctx <- None;
          cvm.Cvm.state <- state;
          charge t "sm_migrate"
            (List.length im.Migrate.im_pages * t.cost.Cost.page_scrub);
          Ok id
    end

let import_cvm_impl t blob =
  match Migrate.unseal blob with
  | Error _ -> Error Ecall.Denied
  | Ok im ->
      let jr = Journal.append t.journal (Journal.Op_import { built = None }) in
      let result =
        build_cvm_from_image t im ~state:Cvm.Suspended
          ~on_created:(fun id ->
            (match jr.Journal.op with
            | Journal.Op_import p -> p.built <- Some id
            | _ -> ());
            Journal.checkpoint t.journal jr "built")
      in
      Journal.mark_done t.journal jr;
      result

let import_cvm t blob =
  host_call t "import_cvm" (fun () -> import_cvm_impl t blob)

(* ---------- crash-safe migration sessions (2PC handoff) ---------- *)

(* The session table is the protocol's durable truth: courier endpoints
   (Migrate_proto) may crash and lose every timer and buffer, but the
   decision state — who owns the guest — lives here and only moves
   through the entry points below. *)

let session_key role session =
  (match role with Mig_out -> "out:" | Mig_in -> "in:") ^ session

let find_session t role session =
  Hashtbl.find_opt t.sessions (session_key role session)

(* Session ids arrive from the untrusted host: bound and sanity-check
   them before they become hash keys and trace labels. *)
let valid_session_id s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all (fun c -> Char.code c >= 0x21 && Char.code c <= 0x7e) s

(* Public, non-secret fingerprint of a sealed blob: lets both monitors
   agree they are talking about the same bytes without trusting the
   courier. Keyed hash only to reuse the primitive; the key is public. *)
let blob_tag blob = Attest.hmac_sha256 ~key:"zion-migrate-blob-tag" blob

let default_retry_budget = 12

let migrate_out_begin_impl t ~cvm:id ~session ~budget =
  if not (valid_session_id session) || budget <= 0 then
    Error Ecall.Invalid_param
  else
    match find_cvm t id with
    | None -> Error Ecall.Not_found
    | Some cvm -> begin
        match find_session t Mig_out session with
        | Some s -> begin
            (* Recovery re-begin: only the incumbent session may restart,
               and only while the handoff is still undecided. The nonce
               is reused so the re-export is byte-identical — chunks the
               destination already holds stay valid. *)
            match s.mg_phase with
            | Mig_active
              when s.mg_cvm = Some id && cvm.Cvm.state = Cvm.Migrating_out ->
                s.mg_epoch <- s.mg_epoch + 1;
                s.mg_stalls <- 0;
                let blob =
                  Migrate.seal ~nonce:s.mg_nonce (snapshot_image t cvm)
                in
                s.mg_blob_tag <- blob_tag blob;
                Metrics.Registry.inc t.registry "migrate.out_rebegin";
                Ok (blob, s.mg_epoch)
            | _ -> Error Ecall.Already_exists
          end
        | None -> begin
            match cvm.Cvm.state with
            | Cvm.Quarantined -> Error Ecall.Quarantined
            | Cvm.Created | Cvm.Destroyed | Cvm.Running
            | Cvm.Migrating_out | Cvm.Migrating_in ->
                Error Ecall.Bad_state
            | Cvm.Runnable | Cvm.Suspended ->
                let nonce = fresh_export_nonce t in
                let blob = Migrate.seal ~nonce (snapshot_image t cvm) in
                let jr =
                  Journal.append t.journal
                    (Journal.Op_mig_out_begin { session; cvm = id })
                in
                cvm.Cvm.state <- Cvm.Migrating_out;
                (* Lifecycle transition: every attestation report issued
                   before this lock is now stale — channel offers bound
                   to the old epoch can no longer be accepted. *)
                cvm.Cvm.epoch <- cvm.Cvm.epoch + 1;
                Journal.checkpoint t.journal jr "locked";
                Hashtbl.replace t.sessions
                  (session_key Mig_out session)
                  {
                    mg_role = Mig_out;
                    mg_phase = Mig_active;
                    mg_cvm = Some id;
                    mg_epoch = 1;
                    mg_nonce = nonce;
                    mg_blob_tag = blob_tag blob;
                    mg_stalls = 0;
                    mg_budget = budget;
                  };
                Metrics.Registry.inc t.registry "migrate.out_begin";
                Journal.mark_done t.journal jr;
                Ok (blob, 1)
          end
      end

let migrate_out_begin ?(budget = default_retry_budget) t ~cvm ~session =
  host_call t "migrate_out_begin" ~cvm (fun () ->
      migrate_out_begin_impl t ~cvm ~session ~budget)

let migrate_out_abort t ~session =
  host_call t "migrate_out_abort" (fun () ->
      match find_session t Mig_out session with
      | None -> Error Ecall.Not_found
      | Some s -> begin
          match s.mg_phase with
          (* past the commit point the handoff is irrevocable *)
          | Mig_committed -> Error Ecall.Bad_state
          | Mig_aborted -> Ok ()
          | Mig_active ->
              let jr =
                Journal.append t.journal
                  (Journal.Op_mig_out_abort { session })
              in
              (match s.mg_cvm with
              | Some id -> begin
                  match find_cvm t id with
                  | Some cvm when cvm.Cvm.state = Cvm.Migrating_out ->
                      (* reactivate: the source stays the one owner —
                         but in a fresh epoch, so reports minted while
                         the migration was pending do not outlive it *)
                      cvm.Cvm.state <- Cvm.Suspended;
                      cvm.Cvm.epoch <- cvm.Cvm.epoch + 1
                  | _ -> ()
                end
              | None -> ());
              Journal.checkpoint t.journal jr "released";
              s.mg_phase <- Mig_aborted;
              Metrics.Registry.inc t.registry "migrate.out_abort";
              Journal.mark_done t.journal jr;
              Ok ()
        end)

let migrate_out_commit t ~session =
  host_call t "migrate_out_commit" (fun () ->
      match find_session t Mig_out session with
      | None -> Error Ecall.Not_found
      | Some s -> begin
          match s.mg_phase with
          | Mig_aborted -> Error Ecall.Bad_state
          | Mig_committed -> Ok ()  (* idempotent: recovery retries land here *)
          | Mig_active -> begin
              match s.mg_cvm with
              | None -> Error Ecall.Bad_state
              | Some id ->
                  (* The commit point of the whole handoff: once the
                     intent lands the decision is irrevocable — recovery
                     rolls it forward even if the crash struck before
                     the phase flip below. Flip the session first so the
                     destroy sweep leaves it Committed, then scrub the
                     source instance. *)
                  let jr =
                    Journal.append t.journal
                      (Journal.Op_mig_out_commit { session })
                  in
                  s.mg_phase <- Mig_committed;
                  Journal.checkpoint t.journal jr "committed";
                  ignore (destroy_cvm_impl t ~cvm:id);
                  Metrics.Registry.inc t.registry "migrate.out_commit";
                  Journal.mark_done t.journal jr;
                  Ok ()
            end
        end)

let migrate_in_prepare t ~session ~epoch blob =
  host_call t "migrate_in_prepare" (fun () ->
      if not (valid_session_id session) || epoch <= 0 then
        Error Ecall.Invalid_param
      else
        match find_session t Mig_in session with
        (* Session ids are single-use: a committed (or aborted) session
           never accepts another blob, which kills replay-of-committed-
           session attacks outright. *)
        | Some s when s.mg_phase <> Mig_active -> Error Ecall.Denied
        | Some s when epoch < s.mg_epoch -> Error Ecall.Bad_state
        | maybe -> begin
            match Migrate.unseal blob with
            | Error _ -> Error Ecall.Denied
            | Ok im -> begin
                let jr =
                  Journal.append t.journal
                    (Journal.Op_mig_in_prepare
                       { session; epoch; built = None })
                in
                let finish r =
                  Journal.mark_done t.journal jr;
                  r
                in
                (* A newer epoch replaces any earlier prepared instance
                   of the same session. *)
                (match maybe with
                | Some s -> begin
                    match s.mg_cvm with
                    | Some old ->
                        ignore (destroy_cvm_impl t ~cvm:old);
                        (* the destroy sweep folded the session to
                           Aborted; it is being re-prepared, not dying *)
                        s.mg_phase <- Mig_active;
                        s.mg_cvm <- None
                    | None -> ()
                  end
                | None -> ());
                match
                  build_cvm_from_image t im ~state:Cvm.Migrating_in
                    ~on_created:(fun id ->
                      (match jr.Journal.op with
                      | Journal.Op_mig_in_prepare p -> p.built <- Some id
                      | _ -> ());
                      Journal.checkpoint t.journal jr "built")
                with
                | Error e -> finish (Error e)
                | Ok id ->
                    let tag = blob_tag blob in
                    (match maybe with
                    | Some s ->
                        s.mg_cvm <- Some id;
                        s.mg_epoch <- epoch;
                        s.mg_blob_tag <- tag
                    | None ->
                        Hashtbl.replace t.sessions
                          (session_key Mig_in session)
                          {
                            mg_role = Mig_in;
                            mg_phase = Mig_active;
                            mg_cvm = Some id;
                            mg_epoch = epoch;
                            mg_nonce = "";
                            mg_blob_tag = tag;
                            mg_stalls = 0;
                            mg_budget = 0;
                          });
                    Metrics.Registry.inc t.registry "migrate.in_prepare";
                    finish (Ok id)
              end
          end)

let migrate_in_commit t ~session =
  host_call t "migrate_in_commit" (fun () ->
      match find_session t Mig_in session with
      | None -> Error Ecall.Not_found
      | Some s -> begin
          match s.mg_phase with
          | Mig_aborted -> Error Ecall.Bad_state
          | Mig_committed -> begin
              match s.mg_cvm with
              | Some id -> Ok id  (* idempotent *)
              | None -> Error Ecall.Bad_state
            end
          | Mig_active -> begin
              match s.mg_cvm with
              | None -> Error Ecall.Bad_state
              | Some id -> begin
                  match find_cvm t id with
                  | Some cvm when cvm.Cvm.state = Cvm.Migrating_in ->
                      (* Two durable flips; a crash between them would
                         leave a Suspended CVM pinned by an Active
                         session (the §8 audit violation), so both sides
                         of the gap are journal points recovery closes. *)
                      let jr =
                        Journal.append t.journal
                          (Journal.Op_mig_in_commit { session })
                      in
                      cvm.Cvm.state <- Cvm.Suspended;
                      Journal.checkpoint t.journal jr "activated";
                      s.mg_phase <- Mig_committed;
                      Metrics.Registry.inc t.registry "migrate.in_commit";
                      Journal.mark_done t.journal jr;
                      Ok id
                  | _ -> Error Ecall.Bad_state
                end
            end
        end)

let migrate_in_abort t ~session =
  host_call t "migrate_in_abort" (fun () ->
      match find_session t Mig_in session with
      | None -> Error Ecall.Not_found
      | Some s -> begin
          match s.mg_phase with
          (* a destination that voted Prepared and then committed can
             never be talked back out of it *)
          | Mig_committed -> Error Ecall.Bad_state
          | Mig_aborted -> Ok ()
          | Mig_active ->
              let jr =
                Journal.append t.journal (Journal.Op_mig_in_abort { session })
              in
              (match s.mg_cvm with
              | Some id -> ignore (destroy_cvm_impl t ~cvm:id)
              | None -> ());
              Journal.checkpoint t.journal jr "scrubbed";
              s.mg_phase <- Mig_aborted;
              s.mg_cvm <- None;
              Metrics.Registry.inc t.registry "migrate.in_abort";
              Journal.mark_done t.journal jr;
              Ok ()
        end)

type migration_info = {
  mi_role : [ `Out | `In ];
  mi_phase : [ `Active | `Committed | `Aborted ];
  mi_cvm : int option;
  mi_epoch : int;
  mi_blob_tag : string;
  mi_stalls : int;
  mi_budget : int;
}

let migrate_session t ~role ~session =
  let r = match role with `Out -> Mig_out | `In -> Mig_in in
  Option.map
    (fun s ->
      {
        mi_role = role;
        mi_phase =
          (match s.mg_phase with
          | Mig_active -> `Active
          | Mig_committed -> `Committed
          | Mig_aborted -> `Aborted);
        mi_cvm = s.mg_cvm;
        mi_epoch = s.mg_epoch;
        mi_blob_tag = s.mg_blob_tag;
        mi_stalls = s.mg_stalls;
        mi_budget = s.mg_budget;
      })
    (find_session t r session)

let migrate_note_stalls t ~session n =
  host_call t "migrate_note_stalls" (fun () ->
      match find_session t Mig_out session with
      | None -> Error Ecall.Not_found
      | Some s ->
          (* The budget declared at [migrate_out_begin] bounds what an
             honest endpoint can ever report — it aborts rather than
             retry past it. Reject anything outside [0, budget] so a
             hostile host cannot frame an active session as over-budget
             and dirty the audit with SM-recorded garbage. *)
          if n < 0 || n > s.mg_budget then Error Ecall.Invalid_param
          else begin
            if s.mg_phase = Mig_active then s.mg_stalls <- n;
            Ok ()
          end)

(* ---------- guest SBI handling ---------- *)

let gpa_to_pa cvm gpa = Spt.lookup cvm.Cvm.spt ~gpa

(* Write bytes into guest memory through the CVM's own G-stage table,
   page by page. *)
let write_guest t cvm ~gpa data =
  let bus = t.machine.Machine.bus in
  let len = String.length data in
  let rec go off =
    if off >= len then Ok ()
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match gpa_to_pa cvm g with
      | None -> Error "guest buffer not mapped"
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Bus.write_bytes bus pa (String.sub data off chunk);
          go (off + chunk)
    end
  in
  go 0

let read_guest t cvm ~gpa len =
  let bus = t.machine.Machine.bus in
  let buf = Buffer.create len in
  let rec go off =
    if off >= len then Ok (Buffer.contents buf)
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match gpa_to_pa cvm g with
      | None -> Error "guest buffer not mapped"
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Buffer.add_string buf (Bus.read_bytes bus pa chunk);
          go (off + chunk)
    end
  in
  go 0

type sbi_outcome = Resume | Stop of exit_reason

let handle_guest_ecall t cvm (hart : Hart.t) =
  let reg = Hart.get_reg hart in
  let a7 = reg 17 and a6 = reg 16 in
  let a0 = reg 10 and a1 = reg 11 and a2 = reg 12 in
  let ret ?(value = 0L) code =
    Hart.set_reg hart 10 code;
    Hart.set_reg hart 11 value;
    Resume
  in
  let ok ?value () = ret ?value 0L in
  let err e = ret (Ecall.error_code e) in
  if a7 = Ecall.sbi_legacy_putchar then begin
    Bus.write t.machine.Machine.bus Bus.uart_base 1 (Int64.logand a0 0xFFL);
    ok ()
  end
  else if a7 = Ecall.sbi_legacy_shutdown then Stop Exit_shutdown
  else if a7 = Ecall.ext_zion then begin
    if a6 = Ecall.fid_guest_putchar then begin
      Bus.write t.machine.Machine.bus Bus.uart_base 1 (Int64.logand a0 0xFFL);
      ok ()
    end
    else if a6 = Ecall.fid_guest_shutdown then Stop Exit_shutdown
    else if a6 = Ecall.fid_guest_random then ok ~value:(next_random t) ()
    else if a6 = Ecall.fid_guest_report then begin
      (* a0 = report buffer GPA, a1 = 32-byte nonce GPA *)
      match read_guest t cvm ~gpa:a1 32 with
      | Error _ -> err Ecall.Invalid_param
      | Ok nonce -> begin
          match cvm.Cvm.measurement with
          | None -> err Ecall.Bad_state
          | Some measurement ->
              let report =
                Attest.make_report ~cvm_id:cvm.Cvm.id ~epoch:cvm.Cvm.epoch
                  ~measurement ~nonce
              in
              let bytes = Attest.report_to_bytes report in
              (match write_guest t cvm ~gpa:a0 bytes with
              | Ok () -> ok ~value:(Int64.of_int (String.length bytes)) ()
              | Error _ -> err Ecall.Invalid_param)
        end
    end
    else if a6 = Ecall.fid_guest_seal then begin
      (* a0 = source GPA, a1 = length, a2 = destination GPA. The sealed
         blob is bound to this CVM's measurement. *)
      let len = Int64.to_int a1 in
      if len <= 0 || len > 65536 then err Ecall.Invalid_param
      else begin
        match (cvm.Cvm.measurement, read_guest t cvm ~gpa:a0 len) with
        | None, _ -> err Ecall.Bad_state
        | _, Error _ -> err Ecall.Invalid_param
        | Some measurement, Ok data -> begin
            let blob = Attest.seal_data ~measurement data in
            charge t "sm_seal" (t.cost.Cost.page_scrub * ((len / 4096) + 1));
            match write_guest t cvm ~gpa:a2 blob with
            | Ok () -> ok ~value:(Int64.of_int (String.length blob)) ()
            | Error _ -> err Ecall.Invalid_param
          end
      end
    end
    else if a6 = Ecall.fid_guest_unseal then begin
      (* a0 = blob GPA, a1 = blob length, a2 = destination GPA. *)
      let len = Int64.to_int a1 in
      if len <= 0 || len > 131072 then err Ecall.Invalid_param
      else begin
        match (cvm.Cvm.measurement, read_guest t cvm ~gpa:a0 len) with
        | None, _ -> err Ecall.Bad_state
        | _, Error _ -> err Ecall.Invalid_param
        | Some measurement, Ok blob -> begin
            charge t "sm_seal" (t.cost.Cost.page_scrub * ((len / 4096) + 1));
            match Attest.unseal_data ~measurement blob with
            | Error _ -> err Ecall.Denied
            | Ok data -> begin
                match write_guest t cvm ~gpa:a2 data with
                | Ok () -> ok ~value:(Int64.of_int (String.length data)) ()
                | Error _ -> err Ecall.Invalid_param
              end
          end
      end
    end
    else if a6 = Ecall.fid_guest_relinquish then begin
      (* Guest returns a private page to the SM: unmap, scrub, keep it
         for this CVM's future faults (ballooning-style). *)
      let gpa = Xword.align_down a0 4096L in
      if not (Layout.is_private_gpa gpa) then err Ecall.Invalid_param
      else begin
        (* Learn the physical page before the first mutation so the
           intent can name it — recovery re-scrubs by address even when
           the mapping is already gone. *)
        match Spt.lookup cvm.Cvm.spt ~gpa with
        | None -> err Ecall.Not_found
        | Some pa -> begin
            let jr =
              Journal.append t.journal
                (Journal.Op_relinquish { cvm = cvm.Cvm.id; gpa; pa })
            in
            match Spt.unmap_private cvm.Cvm.spt ~gpa with
            | Error _ ->
                Journal.mark_done t.journal jr;
                err Ecall.Not_found
            | Ok pa ->
                Journal.checkpoint t.journal jr "unmapped";
                Physmem.zero_range
                  (Bus.dram t.machine.Machine.bus)
                  (Int64.sub pa Bus.dram_base) 4096L;
                charge t "sm_scrub" t.cost.Cost.page_scrub;
                (* The guest VAs aliasing this page are unknown here
                   (with VS-stage paging a VA need not equal the GPA),
                   and other harts may retain the translation too: shoot
                   down by physical page, scoped to this CVM, on every
                   hart. *)
                Array.iter
                  (fun h ->
                    Tlb.flush_pa ~vmid:cvm.Cvm.id h.Hart.tlb pa;
                    Hart.invalidate_fast_path h)
                  t.machine.Machine.harts;
                charge t "sm_shootdown"
                  (Array.length t.machine.Machine.harts
                  * t.cost.Cost.tlb_vmid_flush);
                Journal.checkpoint t.journal jr "scrubbed";
                (match Hashtbl.find_opt t.freed_pages cvm.Cvm.id with
                | Some r -> r := pa :: !r
                | None -> Hashtbl.add t.freed_pages cvm.Cvm.id (ref [ pa ]));
                Journal.mark_done t.journal jr;
                ok ()
          end
      end
    end
    else if a6 = Ecall.fid_guest_chan_send then begin
      (* a0 = channel id, a1 = source GPA, a2 = length. The SM writes
         the caller's own directional half on its behalf: payload and
         length land before the seq bump that publishes them. (A guest
         may equally store into its mapped half directly — the SM's
         consume-side shadow only ever trusts what Check-after-Load
         admits.) *)
      let len = Int64.to_int a2 in
      if len < 1 || len > Layout.chan_max_msg then err Ecall.Invalid_param
      else begin
        match find_channel t (Int64.to_int a0) with
        | None -> err Ecall.Not_found
        | Some ch ->
            if ch.ch_a <> cvm.Cvm.id && ch.ch_b <> cvm.Cvm.id then
              err Ecall.Denied
            else if ch.ch_phase <> Chan_established then err Ecall.Bad_state
            else begin
              match read_guest t cvm ~gpa:a1 len with
              | Error _ -> err Ecall.Invalid_param
              | Ok payload ->
                  let bus = t.machine.Machine.bus in
                  let base = chan_dir_base ch ~from_a:(ch.ch_a = cvm.Cvm.id) in
                  let seq = Bus.read bus base 8 in
                  Bus.write_bytes bus
                    (Int64.add base (Int64.of_int Layout.chan_hdr_size))
                    payload;
                  Bus.write bus (Int64.add base 8L) 8 (Int64.of_int len);
                  Bus.write bus base 8 (Int64.add seq 1L);
                  (* Bulk payload copy: a plain M-mode word copy, not
                     the per-register validated transfer — only the
                     header goes through Check-after-Load. *)
                  charge t "sm_chan"
                    (t.cost.Cost.ecall_roundtrip
                    + ((len + 7) / 8 * (t.cost.Cost.load + t.cost.Cost.store)));
                  ok ~value:(Int64.of_int len) ()
            end
      end
    end
    else if a6 = Ecall.fid_guest_chan_recv then begin
      (* a0 = channel id, a1 = destination GPA, a2 = max length. The
         peer-writable half goes through Check-after-Load against the
         SM's delivery shadow; a rejected header is a strike against the
         peer, and the strike budget degrades the channel — never the
         consuming CVM. *)
      match find_channel t (Int64.to_int a0) with
      | None -> err Ecall.Not_found
      | Some ch ->
          if ch.ch_a <> cvm.Cvm.id && ch.ch_b <> cvm.Cvm.id then
            err Ecall.Denied
          else if ch.ch_phase <> Chan_established then err Ecall.Bad_state
          else begin
            let consumer_is_b = ch.ch_b = cvm.Cvm.id in
            let from_a = consumer_is_b in
            let shadow = if consumer_is_b then ch.ch_seq_ab else ch.ch_seq_ba in
            charge t "sm_chan" t.cost.Cost.ecall_roundtrip;
            match chan_check_dir t ch ~from_a ~shadow with
            | Chan_idle -> ok ~value:0L ()
            | Chan_bad verdict ->
                chan_strike t ch ~victim:cvm.Cvm.id verdict;
                err Ecall.Denied
            | Chan_msg (seq, len) ->
                if Int64.of_int len > a2 then err Ecall.Invalid_param
                else begin
                  let bus = t.machine.Machine.bus in
                  let base = chan_dir_base ch ~from_a in
                  let payload =
                    Bus.read_bytes bus
                      (Int64.add base (Int64.of_int Layout.chan_hdr_size))
                      len
                  in
                  match write_guest t cvm ~gpa:a1 payload with
                  | Error _ -> err Ecall.Invalid_param
                  | Ok () ->
                      if consumer_is_b then ch.ch_seq_ab <- seq
                      else ch.ch_seq_ba <- seq;
                      charge t "sm_chan"
                        ((len + 7) / 8 * (t.cost.Cost.load + t.cost.Cost.store));
                      ok ~value:(Int64.of_int len) ()
                end
          end
    end
    else if a6 = Ecall.fid_guest_share || a6 = Ecall.fid_guest_unshare then
      (* The static split-page-table design needs no per-page work: the
         shared window is always backed by hypervisor mappings. *)
      ok ()
    else err Ecall.Not_found
  end
  else err Ecall.Not_found

(* ---------- world switch ---------- *)

let save_host_ctx t hart_id =
  let hart = t.machine.Machine.harts.(hart_id) in
  let h = t.host.(hart_id) in
  let csr = hart.Hart.csr in
  h.h_satp <- csr.Csr.satp;
  h.h_hgatp <- csr.Csr.hgatp;
  h.h_medeleg <- csr.Csr.medeleg;
  h.h_mideleg <- csr.Csr.mideleg;
  h.h_hedeleg <- csr.Csr.hedeleg;
  h.h_hideleg <- csr.Csr.hideleg;
  h.h_mode <- hart.Hart.mode;
  h.h_pc <- hart.Hart.pc

let restore_host_ctx t hart_id =
  let hart = t.machine.Machine.harts.(hart_id) in
  let h = t.host.(hart_id) in
  let csr = hart.Hart.csr in
  csr.Csr.satp <- h.h_satp;
  csr.Csr.hgatp <- h.h_hgatp;
  csr.Csr.medeleg <- h.h_medeleg;
  csr.Csr.mideleg <- h.h_mideleg;
  csr.Csr.hedeleg <- h.h_hedeleg;
  csr.Csr.hideleg <- h.h_hideleg;
  hart.Hart.mode <- h.h_mode;
  hart.Hart.pc <- h.h_pc;
  (* Every path that leaves CVM mode comes through here, so this is
     the single point where profiler samples stop being attributed to
     the guest. *)
  match t.profiler with
  | Some p -> Metrics.Profile.set_context p ~hart:hart_id ~cvm:(-1)
  | None -> ()

let note_progress t cvm_id =
  Hashtbl.replace t.last_seen cvm_id (Metrics.Ledger.now (ledger t))

let world_switch_out t hart_id cvm vcpu_idx ~mmio_kind =
  let hart = t.machine.Machine.harts.(hart_id) in
  let sv = Cvm.vcpu cvm vcpu_idx in
  Vcpu.save_from_hart hart sv;
  (* When the exit came through a trap, the hart's pc already points at
     the M-mode vector; the guest's architectural resume point is mepc. *)
  if hart.Hart.mode = Priv.M then sv.Vcpu.pc <- hart.Hart.csr.Csr.mepc;
  let pmp_work = Pmp_guard.set_world t.guard hart ~cvm_open:false in
  restore_host_ctx t hart_id;
  (* With VMID-tagged retention the guest's entries stay cached across
     the switch — precise shootdowns keep them coherent — and the host
     never pays the refill walks. *)
  let flushed =
    if t.cfg.tlb_retention then false
    else begin
      Tlb.flush_all hart.Hart.tlb;
      Hart.invalidate_fast_path hart;
      true
    end
  in
  let cycles = exit_cost ~pmp:pmp_work ~tlb_flush:flushed t ~mmio:mmio_kind in
  (* Trap.take already charged trap_entry when the guest trapped. *)
  let observing = obs t in
  if observing then
    Metrics.Trace.span_begin t.trace ~hart:hart_id ~cvm:cvm.Cvm.id
      ~vcpu:vcpu_idx "cvm_exit";
  charge t "cvm_exit" (cycles - t.cost.Cost.trap_entry);
  if observing then begin
    Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:cvm.Cvm.id
      ~vcpu:vcpu_idx "cvm_exit";
    let scope = Metrics.Registry.Cvm cvm.Cvm.id in
    Metrics.Registry.inc t.registry ~scope "exits";
    Metrics.Registry.observe t.registry ~scope "exit_cycles" cycles;
    if flushed then Metrics.Registry.inc t.registry "tlb.full_flush"
  end;
  t.exit_hist <- cycles :: t.exit_hist;
  cvm.Cvm.exit_count <- cvm.Cvm.exit_count + 1;
  cvm.Cvm.state <- Cvm.Suspended;
  note_progress t cvm.Cvm.id;
  seal_vcpu t cvm vcpu_idx

(* Resume the guest after an SM-internal service (fault, SBI) without
   leaving CVM mode. [skip] advances past the trapping instruction. *)
let resume_guest t hart ~skip =
  let csr = hart.Hart.csr in
  let target_virt = Csr.get_mpv csr in
  let target_level = Csr.get_mpp csr in
  hart.Hart.mode <- Priv.of_level ~virt:target_virt target_level;
  hart.Hart.pc <-
    (if skip then Int64.add csr.Csr.mepc 4L else csr.Csr.mepc);
  charge t "xret" t.cost.Cost.xret

(* Handle a guest-page fault on a private GPA inside the SM.
   Returns [Ok stage] or the exit the fault escalates to. *)
type fault_outcome = Fault_served of Hier_alloc.stage | Fault_spurious

let handle_private_fault t cvm vcpu_idx gpa =
  let key = (cvm.Cvm.id, vcpu_idx) in
  let after_expand = Hashtbl.mem t.expand_retry key in
  let cache = Cvm.cache cvm vcpu_idx in
  let page_gpa = Xword.align_down gpa 4096L in
  (* Another vCPU may have mapped the page between the fault and our
     handling (or the fault was a stale-TLB artifact): just resume. *)
  if Spt.lookup cvm.Cvm.spt ~gpa:page_gpa <> None then Ok Fault_spurious
  else
  match provide_private_page t cvm cache ~gpa:page_gpa ~after_expand with
  | Ok (_, stage) ->
      Hashtbl.remove t.expand_retry key;
      Ok (Fault_served stage)
  | Error `Need_expand ->
      Hashtbl.replace t.expand_retry key ();
      Error (Exit_need_memory { bytes = Secmem.block_size t.sm })
  | Error (`Map_error e) -> Error (Exit_error e)

let record_fault t cvm stage =
  let cycles = fault_cost t stage in
  (* The architectural trap already charged trap_entry; the stage-3
     world-switch components are charged by the actual switch. *)
  let already =
    t.cost.Cost.trap_entry
    +
    match stage with
    | Hier_alloc.Stage3_retry ->
        exit_cost t ~mmio:No_mmio
        + entry_cost t ~mmio:No_mmio ~validated_ptes:0
        + t.cost.Cost.expand_host_work
    | Hier_alloc.Stage1 | Hier_alloc.Stage2 -> 0
  in
  charge t "sm_fault" (cycles - already);
  if obs t then begin
    let label = Hier_alloc.stage_to_string stage in
    Metrics.Trace.instant t.trace ~cvm:cvm.Cvm.id ("fault." ^ label);
    let scope = Metrics.Registry.Cvm cvm.Cvm.id in
    Metrics.Registry.inc t.registry ~scope ("faults." ^ label);
    Metrics.Registry.observe t.registry ~scope "fault_cycles" cycles
  end;
  t.faults <- (stage, cycles) :: t.faults;
  cvm.Cvm.fault_count <- cvm.Cvm.fault_count + 1;
  let s = cvm.Cvm.alloc_stats in
  match stage with
  | Hier_alloc.Stage1 -> s.Hier_alloc.stage1 <- s.Hier_alloc.stage1 + 1
  | Hier_alloc.Stage2 -> s.Hier_alloc.stage2 <- s.Hier_alloc.stage2 + 1
  | Hier_alloc.Stage3_retry -> s.Hier_alloc.stage3 <- s.Hier_alloc.stage3 + 1

let in_virtio_window gpa =
  (not (Xword.ult gpa Layout.virtio_mmio_gpa))
  && Xword.ult gpa (Int64.add Layout.virtio_mmio_gpa Layout.virtio_mmio_size)

let run_vcpu t ~hart:hart_id ~cvm:id ~vcpu:vcpu_idx ~max_steps =
  host_call t "run_vcpu" ~cvm:id (fun () ->
  if hart_id < 0 || hart_id >= Array.length t.machine.Machine.harts then
    Error Ecall.Invalid_param
  else if max_steps <= 0 then Error Ecall.Invalid_param
  else
  match find_cvm t id with
  | None -> Error Ecall.Not_found
  | Some cvm when vcpu_idx < 0 || vcpu_idx >= Cvm.nvcpus cvm ->
      Error Ecall.Invalid_param
  | Some cvm -> begin
      match cvm.Cvm.state with
      | Cvm.Quarantined -> Error Ecall.Quarantined
      | Cvm.Created | Cvm.Destroyed | Cvm.Running
      | Cvm.Migrating_out | Cvm.Migrating_in ->
          Error Ecall.Bad_state
      | Cvm.Runnable | Cvm.Suspended ->
        let entered = ref false in
        try
          if obs t then
            Metrics.Trace.span_begin t.trace ~hart:hart_id ~cvm:id
              ~vcpu:vcpu_idx "run_vcpu";
          let hart = t.machine.Machine.harts.(hart_id) in
          let sv = Cvm.vcpu cvm vcpu_idx in
          let sh = Cvm.shared_vcpu cvm vcpu_idx in
          let key = (id, vcpu_idx) in
          (* Absorb a pending MMIO reply before entering. *)
          let mmio_kind = ref No_mmio in
          let absorb_error = ref None in
          (match Hashtbl.find_opt t.pending_mmio key with
          | None -> ()
          | Some mmio ->
              Hashtbl.remove t.pending_mmio key;
              if t.cfg.shared_vcpu then begin
                mmio_kind := Shared_mmio;
                match Vcpu.absorb_mmio_result sh sv mmio with
                | Ok _ -> ()
                | Error e -> absorb_error := Some e
              end
              else begin
                mmio_kind := Unshared_mmio;
                (* Unshared path: apply the staged SET_REG value. *)
                (match Hashtbl.find_opt t.staged_reg key with
                | Some (reg, value) when reg = mmio.Vcpu.mmio_reg ->
                    if (not mmio.Vcpu.mmio_write) && reg <> 0 then
                      sv.Vcpu.regs.(reg) <- value
                | Some _ -> absorb_error := Some "SET_REG to wrong register"
                | None ->
                    if not mmio.Vcpu.mmio_write then
                      absorb_error := Some "missing SET_REG before resume");
                Hashtbl.remove t.staged_reg key;
                sv.Vcpu.pc <- Int64.add sv.Vcpu.pc 4L
              end);
          (match !absorb_error with
          | Some msg ->
              (* Check-after-Load rejected the reply: refuse to run and
                 quarantine — the hypervisor broke the exit protocol. *)
              if obs t then begin
                Metrics.Trace.instant t.trace ~hart:hart_id ~cvm:id
                  ~vcpu:vcpu_idx
                  ~args:[ ("reason", msg) ]
                  "check_after_load.reject";
                Metrics.Registry.inc t.registry
                  ~scope:(Metrics.Registry.Cvm id) "check_after_load.reject";
                Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:id
                  ~vcpu:vcpu_idx
                  ~args:[ ("exit", "denied") ]
                  "run_vcpu"
              end;
              quarantine t cvm ~reason:("check-after-load: " ^ msg);
              seal_all_vcpus t cvm;
              Error Ecall.Denied
          | None ->
              if obs t && !mmio_kind <> No_mmio then begin
                Metrics.Trace.instant t.trace ~hart:hart_id ~cvm:id
                  ~vcpu:vcpu_idx "check_after_load.accept";
                Metrics.Registry.inc t.registry
                  ~scope:(Metrics.Registry.Cvm id) "check_after_load.accept"
              end;
              (* --- CVM entry --- *)
              save_host_ctx t hart_id;
              entered := true;
              Deleg_policy.apply_cvm hart;
              let pmp_work =
                Pmp_guard.set_world t.guard hart ~cvm_open:true
              in
              hart.Hart.csr.Csr.hgatp <-
                Sv39.hgatp_of ~vmid:id ~root:(Spt.root cvm.Cvm.spt);
              let flushed =
                if t.cfg.tlb_retention then false
                else begin
                  Tlb.flush_all hart.Hart.tlb;
                  Hart.invalidate_fast_path hart;
                  true
                end
              in
              let validated =
                if t.cfg.validate_shared_on_entry then
                  Spt.validate_shared cvm.Cvm.spt
                    ~is_secure:(Secmem.contains t.sm)
                else Ok 0
              in
              match validated with
              | Error msg ->
                  (* Hypervisor planted a hostile shared subtree: abort
                     the entry before any guest instruction runs, and
                     quarantine so the subtree is disowned. *)
                  restore_host_ctx t hart_id;
                  ignore (Pmp_guard.set_world t.guard hart ~cvm_open:false);
                  (* No guest instruction ran: only this CVM's (possibly
                     retained) entries could be suspect. *)
                  Tlb.flush_vmid hart.Hart.tlb id;
                  Hart.invalidate_fast_path hart;
                  if obs t then begin
                    Metrics.Trace.instant t.trace ~hart:hart_id ~cvm:id
                      ~vcpu:vcpu_idx "shared_subtree.reject";
                    Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:id
                      ~vcpu:vcpu_idx
                      ~args:[ ("exit", "denied") ]
                      "run_vcpu"
                  end;
                  quarantine t cvm ~reason:("hostile shared subtree: " ^ msg);
                  seal_all_vcpus t cvm;
                  Error Ecall.Denied
              | Ok validated -> begin
                let ec =
                  entry_cost ~pmp:pmp_work ~tlb_flush:flushed t
                    ~mmio:!mmio_kind ~validated_ptes:validated
                in
                let observing = obs t in
                if observing then
                  Metrics.Trace.span_begin t.trace ~hart:hart_id ~cvm:id
                    ~vcpu:vcpu_idx "cvm_entry";
                charge t "cvm_entry" ec;
                if observing then begin
                  Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:id
                    ~vcpu:vcpu_idx "cvm_entry";
                  let scope = Metrics.Registry.Cvm id in
                  Metrics.Registry.inc t.registry ~scope "entries";
                  Metrics.Registry.observe t.registry ~scope "entry_cycles" ec;
                  if flushed then
                    Metrics.Registry.inc t.registry "tlb.full_flush"
                end;
                t.entry_hist <- ec :: t.entry_hist;
                cvm.Cvm.entry_count <- cvm.Cvm.entry_count + 1;
                note_progress t id;
                (match t.profiler with
                | Some p -> Metrics.Profile.set_context p ~hart:hart_id ~cvm:id
                | None -> ());
                Vcpu.restore_to_hart sv hart;
                hart.Hart.mode <- Priv.VS;
                hart.Hart.wfi_stalled <- false;
                cvm.Cvm.state <- Cvm.Running;
                (* --- guest execution loop --- *)
                let finish ~mmio reason =
                  world_switch_out t hart_id cvm vcpu_idx ~mmio_kind:mmio;
                  if obs t then begin
                    let label = exit_reason_label reason in
                    Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:id
                      ~vcpu:vcpu_idx
                      ~args:[ ("exit", label) ]
                      "run_vcpu";
                    Metrics.Registry.inc t.registry
                      ~scope:(Metrics.Registry.Cvm id)
                      ("exit_reason." ^ label)
                  end;
                  Ok reason
                in
                let rec loop steps =
                  if steps >= max_steps then finish ~mmio:No_mmio Exit_limit
                  else begin
                    Machine.sync_time t.machine;
                    Exec.step hart;
                    if hart.Hart.mode <> Priv.M then loop (steps + 1)
                    else handle_m_trap steps
                  end
                and handle_m_trap steps =
                  let csr = hart.Hart.csr in
                  let cause = csr.Csr.mcause in
                  let is_interrupt = Int64.compare cause 0L < 0 in
                  let code = Int64.to_int (Int64.logand cause 0xFFL) in
                  if is_interrupt then
                    (* Timer or software interrupt for the host. *)
                    finish ~mmio:No_mmio Exit_timer
                  else begin
                    match Cause.exception_of_code code with
                    | Some Cause.Ecall_from_vs -> begin
                        match handle_guest_ecall t cvm hart with
                        | Resume ->
                            resume_guest t hart ~skip:true;
                            loop (steps + 1)
                        | Stop reason -> finish ~mmio:No_mmio reason
                      end
                    | Some
                        (Cause.Load_guest_page_fault
                        | Cause.Store_guest_page_fault
                        | Cause.Instr_guest_page_fault) ->
                        let gpa =
                          Int64.logor
                            (Int64.shift_left csr.Csr.mtval2 2)
                            (Int64.logand csr.Csr.mtval 3L)
                        in
                        if in_virtio_window gpa then begin
                          (* MMIO: decode from the recorded instruction,
                             expose via the shared vCPU, exit. *)
                          Vcpu.save_from_hart hart sv;
                          match
                            Vcpu.decode_mmio sv ~htinst:csr.Csr.htinst ~gpa
                          with
                          | Error e -> finish ~mmio:No_mmio (Exit_error e)
                          | Ok mmio ->
                              Hashtbl.replace t.pending_mmio key mmio;
                              let kind =
                                if t.cfg.shared_vcpu then begin
                                  ignore
                                    (Vcpu.expose_mmio sh mmio
                                       ~htinst:csr.Csr.htinst);
                                  Shared_mmio
                                end
                                else Unshared_mmio
                              in
                              finish ~mmio:kind (Exit_mmio mmio)
                        end
                        else if Layout.is_private_gpa gpa then begin
                          match handle_private_fault t cvm vcpu_idx gpa with
                          | Ok (Fault_served stage) ->
                              record_fault t cvm stage;
                              resume_guest t hart ~skip:false;
                              loop (steps + 1)
                          | Ok Fault_spurious ->
                              (* page is present; the retry will hit.
                                 Scope the shootdown to this CVM: with
                                 retention, another guest's entry for
                                 the same page index is still valid. *)
                              Tlb.flush_page ~vmid:id hart.Hart.tlb
                                hart.Hart.csr.Csr.mtval;
                              Hart.invalidate_fast_path hart;
                              resume_guest t hart ~skip:false;
                              loop (steps + 1)
                          | Error (Exit_need_memory b) ->
                              (* The guest will re-fault after the pool
                                 expansion and take the stage-3 path. *)
                              finish ~mmio:No_mmio (Exit_need_memory b)
                          | Error reason -> finish ~mmio:No_mmio reason
                        end
                        else if Layout.is_shared_gpa gpa then
                          (* Shared-region fault: hypervisor's job. *)
                          finish ~mmio:No_mmio (Exit_shared_fault gpa)
                        else
                          (* Beyond both halves of the guest-physical
                             space: a wild guest access, not a mapping
                             request. *)
                          finish ~mmio:No_mmio
                            (Exit_error
                               (Printf.sprintf
                                  "guest access outside the GPA space: 0x%Lx"
                                  gpa))
                    | Some e ->
                        finish ~mmio:No_mmio
                          (Exit_error
                             (Printf.sprintf "unexpected guest trap: %s"
                                (Cause.to_string
                                   (Cause.Exception e))))
                    | None ->
                        finish ~mmio:No_mmio (Exit_error "unknown mcause")
                  end
                in
                loop 0
              end)
        with
        | Journal.Crashed as c ->
            (* The injected SM death: the hart's state is whatever the
               crash left (reboot wipes it), so no cleanup here — just
               let the reboot driver take over. *)
            raise c
        | e ->
          (* A fault inside the SM must never leave the hart in CVM
             mode with the PMP window open: restore the host world
             first, then quarantine — the CVM's state may be
             inconsistent, so it can only be destroyed from here. *)
          if !entered then begin
            let hart = t.machine.Machine.harts.(hart_id) in
            restore_host_ctx t hart_id;
            ignore (Pmp_guard.set_world t.guard hart ~cvm_open:false);
            (* Only this CVM's translations are suspect; the quarantine
               below shoots its VMID down on every hart anyway. *)
            Tlb.flush_vmid hart.Hart.tlb cvm.Cvm.id;
            Hart.invalidate_fast_path hart
          end;
          quarantine t cvm
            ~reason:("internal fault during run: " ^ Printexc.to_string e);
          seal_all_vcpus t cvm;
          if obs t then
            Metrics.Trace.span_end t.trace ~hart:hart_id ~cvm:id
              ~vcpu:vcpu_idx
              ~args:[ ("exit", "internal_fault") ]
              "run_vcpu";
          internal_fault t "run_vcpu" e
    end)

(* After a fault-driven exit the guest's pc was reset to the faulting
   instruction, so on re-entry the retry fault is taken with the
   after-expand stage accounting. We detect that by marking CVMs that
   exited with Need_memory. *)

let get_vcpu_reg t ~cvm:id ~vcpu:vcpu_idx ~reg =
  host_call t "get_vcpu_reg" ~cvm:id (fun () ->
      match find_cvm t id with
      | None -> Error Ecall.Not_found
      | Some cvm when cvm.Cvm.state = Cvm.Quarantined ->
          Error Ecall.Quarantined
      | Some cvm when vcpu_idx < 0 || vcpu_idx >= Cvm.nvcpus cvm ->
          Error Ecall.Invalid_param
      | Some cvm -> begin
          match Hashtbl.find_opt t.pending_mmio (id, vcpu_idx) with
          | None -> Error Ecall.No_pending_exit
          | Some mmio ->
              charge t "sm_getreg"
                (t.cost.Cost.ecall_roundtrip + t.cost.Cost.secure_copy_item);
              ignore (Cvm.vcpu cvm vcpu_idx);
              (* Only the value the pending exit legitimately exposes —
                 the store data, requested as register 0 — is readable.
                 Every other register stays secret. *)
              if mmio.Vcpu.mmio_write && reg = 0 then Ok mmio.Vcpu.mmio_data
              else Error Ecall.Denied
        end)

let set_vcpu_reg t ~cvm:id ~vcpu:vcpu_idx ~reg value =
  host_call t "set_vcpu_reg" ~cvm:id (fun () ->
      match find_cvm t id with
      | None -> Error Ecall.Not_found
      | Some cvm when cvm.Cvm.state = Cvm.Quarantined ->
          Error Ecall.Quarantined
      | Some cvm when vcpu_idx < 0 || vcpu_idx >= Cvm.nvcpus cvm ->
          Error Ecall.Invalid_param
      | Some _ -> begin
          match Hashtbl.find_opt t.pending_mmio (id, vcpu_idx) with
          | None -> Error Ecall.No_pending_exit
          | Some mmio ->
              charge t "sm_setreg"
                (t.cost.Cost.ecall_roundtrip + t.cost.Cost.secure_copy_item);
              if mmio.Vcpu.mmio_write then Error Ecall.Denied
              else if reg <> mmio.Vcpu.mmio_reg then Error Ecall.Denied
              else begin
                Hashtbl.replace t.staged_reg (id, vcpu_idx) (reg, value);
                Ok ()
              end
        end)

let shared_vcpu_of t ~cvm:id ~vcpu:vcpu_idx =
  Option.map (fun c -> Cvm.shared_vcpu c vcpu_idx) (find_cvm t id)

type path = Entry_plain | Entry_with_mmio | Exit_plain | Exit_with_mmio

let path_cost t path =
  let mmio_kind () =
    if t.cfg.shared_vcpu then Shared_mmio else Unshared_mmio
  in
  match path with
  | Entry_plain -> entry_cost t ~mmio:No_mmio ~validated_ptes:0
  | Entry_with_mmio -> entry_cost t ~mmio:(mmio_kind ()) ~validated_ptes:0
  | Exit_plain -> exit_cost t ~mmio:No_mmio
  | Exit_with_mmio -> exit_cost t ~mmio:(mmio_kind ())

let cvm_state t ~cvm:id =
  Option.map (fun c -> c.Cvm.state) (find_cvm t id)

let cvm_count t =
  Hashtbl.fold
    (fun _ c n -> if c.Cvm.state <> Cvm.Destroyed then n + 1 else n)
    t.cvms 0

let cvm_measurement t ~cvm:id =
  Option.bind (find_cvm t id) (fun c -> c.Cvm.measurement)

let entry_cycles t = t.entry_hist
let exit_cycles t = t.exit_hist
let fault_log t = t.faults

let alloc_stats t ~cvm:id =
  Option.map (fun c -> c.Cvm.alloc_stats) (find_cvm t id)

let reset_stats t =
  t.entry_hist <- [];
  t.exit_hist <- [];
  t.faults <- []

let console_output t = Machine.console_output t.machine

let pmp_counters t =
  [
    ("pmp.syncs", Pmp_guard.sync_count t.guard);
    ("pmp.sync_skips", Pmp_guard.sync_skip_count t.guard);
    ("pmp.world_toggles", Pmp_guard.world_toggle_count t.guard);
    ("pmp.world_skips", Pmp_guard.world_skip_count t.guard);
  ]

let audit t =
  let findings = ref [] in
  let checked = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> findings := m :: !findings) fmt in
  let check b fmt =
    incr checked;
    if b then Printf.ksprintf ignore fmt else fail fmt
  in
  (* 1. Pool closed on every hart (caller runs in Normal mode). *)
  List.iter
    (fun (base, _) ->
      Array.iteri
        (fun i hart ->
          check
            (not (Pmp.check hart.Hart.csr.Csr.pmp Priv.HS Pmp.Read base 8))
            "pool region 0x%Lx is PMP-open to HS on hart %d" base i)
        t.machine.Machine.harts)
    (Secmem.regions t.sm);
  (* 2. Page-ownership exclusivity across all live CVMs. *)
  let live =
    Hashtbl.fold
      (fun _ c acc -> if c.Cvm.state <> Cvm.Destroyed then c :: acc else acc)
      t.cvms []
  in
  let seen_pa = Hashtbl.create 256 in
  (* Channel ring pages are the one sanctioned two-owner exception: the
     channel table, not [page_owner], is their ownership ground truth,
     and §11 pins down exactly which two mappers are legal. *)
  let chan_ring = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ ch ->
      match ch.ch_page with
      | Some pa when chan_live ch -> Hashtbl.replace chan_ring pa ch
      | _ -> ())
    t.channels;
  List.iter
    (fun cvm ->
      Spt.fold_private cvm.Cvm.spt
        (fun ~gpa ~pa () ->
          (match Hashtbl.find_opt chan_ring pa with
          | Some ch ->
              check
                (ch.ch_phase = Chan_established)
                "CVM %d maps ring page 0x%Lx of un-established channel %d"
                cvm.Cvm.id pa ch.ch_id;
              check
                (cvm.Cvm.id = ch.ch_a || cvm.Cvm.id = ch.ch_b)
                "CVM %d maps channel %d ring page 0x%Lx but is not an \
                 endpoint"
                cvm.Cvm.id ch.ch_id pa;
              check (gpa = ch.ch_gpa)
                "CVM %d maps channel %d ring page 0x%Lx at GPA 0x%Lx, \
                 expected slot 0x%Lx"
                cvm.Cvm.id ch.ch_id pa gpa ch.ch_gpa
          | None ->
              check (Secmem.contains t.sm pa)
                "CVM %d maps GPA 0x%Lx to non-secure PA 0x%Lx" cvm.Cvm.id
                gpa pa;
              check
                (Hashtbl.find_opt t.page_owner pa = Some cvm.Cvm.id)
                "CVM %d maps PA 0x%Lx it does not own" cvm.Cvm.id pa;
              (match Hashtbl.find_opt seen_pa pa with
              | Some other ->
                  fail "PA 0x%Lx backs both CVM %d and CVM %d" pa other
                    cvm.Cvm.id
              | None -> Hashtbl.add seen_pa pa cvm.Cvm.id));
          incr checked)
        ())
    live;
  (* 3. No CVM's page-table pages are guest-mapped anywhere. *)
  let table_pages = Hashtbl.create 64 in
  List.iter
    (fun cvm ->
      Hashtbl.replace table_pages (Spt.root cvm.Cvm.spt) cvm.Cvm.id;
      List.iter
        (fun pa -> Hashtbl.replace table_pages pa cvm.Cvm.id)
        (Spt.table_pages cvm.Cvm.spt))
    live;
  Hashtbl.iter
    (fun pa owner ->
      incr checked;
      match Hashtbl.find_opt table_pages pa with
      | Some table_owner ->
          fail "page-table page 0x%Lx of CVM %d is guest-mapped by CVM %d"
            pa table_owner owner
      | None -> ())
    seen_pa;
  (* 4. Shared subtrees never reference secure memory. *)
  List.iter
    (fun cvm ->
      incr checked;
      match Spt.validate_shared cvm.Cvm.spt ~is_secure:(Secmem.contains t.sm) with
      | Ok _ -> ()
      | Error msg -> fail "CVM %d shared subtree: %s" cvm.Cvm.id msg)
    live;
  (* 5. Allocator structural invariants. *)
  incr checked;
  (match Secmem.check_invariants t.sm with
  | Ok () -> ()
  | Error msg -> fail "secure memory list: %s" msg);
  (* 6. No owned page lies inside a block the allocator considers free
     (region bases are block-aligned, so the containing block's base is
     just the page rounded down to the block size). *)
  let blk = Secmem.block_size t.sm in
  let free_bases = Hashtbl.create 64 in
  List.iter
    (fun b -> Hashtbl.replace free_bases b ())
    (Secmem.free_list_bases t.sm);
  Hashtbl.iter
    (fun pa owner ->
      incr checked;
      let base = Int64.mul (Int64.div pa blk) blk in
      if Hashtbl.mem free_bases base then
        fail "PA 0x%Lx owned by CVM %d lies in free block 0x%Lx" pa owner
          base)
    t.page_owner;
  (* 7. Secure vCPU state of every parked CVM matches its seal: nothing
     outside the SM's own world switch has touched it. *)
  List.iter
    (fun cvm ->
      if cvm.Cvm.state <> Cvm.Running then
        for i = 0 to Cvm.nvcpus cvm - 1 do
          incr checked;
          match Hashtbl.find_opt t.vcpu_seal (cvm.Cvm.id, i) with
          | None -> fail "CVM %d vCPU %d has no seal" cvm.Cvm.id i
          | Some sealed ->
              if vcpu_checksum (Cvm.vcpu cvm i) <> sealed then
                fail "CVM %d vCPU %d secure state diverges from its seal"
                  cvm.Cvm.id i
        done)
    live;
  (* 8. Migration-session ownership. An active session pins its CVM in
     the matching Migrating state; a committed out-session left the
     source scrubbed; a committed in-session activated its CVM; aborted
     sessions stranded no lock; every migrating CVM is pinned by exactly
     one active session; no source overran its retry budget. *)
  let mig_owner = Hashtbl.create 8 in
  Hashtbl.iter
    (fun key s ->
      let role = match s.mg_role with Mig_out -> "out" | Mig_in -> "in" in
      let state_of id =
        Option.map (fun c -> c.Cvm.state) (find_cvm t id)
      in
      (match (s.mg_phase, s.mg_cvm) with
      | Mig_active, Some id -> begin
          incr checked;
          (match Hashtbl.find_opt mig_owner id with
          | Some other ->
              fail "CVM %d pinned by migration sessions %s and %s" id other
                key
          | None -> Hashtbl.add mig_owner id key);
          let want =
            match s.mg_role with
            | Mig_out -> Cvm.Migrating_out
            | Mig_in -> Cvm.Migrating_in
          in
          match state_of id with
          | None ->
              fail "active %s-session %s references unknown CVM %d" role key
                id
          | Some st when st <> want ->
              fail "active %s-session %s: CVM %d is %s, expected %s" role
                key id
                (Cvm.state_to_string st)
                (Cvm.state_to_string want)
          | Some _ -> ()
        end
      | Mig_active, None ->
          incr checked;
          if s.mg_role = Mig_out then
            fail "active out-session %s has no CVM" key
      | Mig_committed, cvm_opt -> begin
          incr checked;
          match (s.mg_role, cvm_opt) with
          | Mig_out, Some id -> begin
              match state_of id with
              | Some st when st <> Cvm.Destroyed ->
                  fail "committed out-session %s left source CVM %d %s" key
                    id (Cvm.state_to_string st)
              | _ -> ()
            end
          | Mig_out, None -> ()
          | Mig_in, Some id -> begin
              match state_of id with
              | Some Cvm.Migrating_in ->
                  fail "committed in-session %s: CVM %d still prepared" key
                    id
              | None ->
                  fail "committed in-session %s: CVM %d missing" key id
              | Some _ -> ()
            end
          | Mig_in, None -> fail "committed in-session %s has no CVM" key
        end
      | Mig_aborted, Some id -> begin
          incr checked;
          match (s.mg_role, state_of id) with
          | Mig_out, Some Cvm.Migrating_out ->
              fail "aborted out-session %s left CVM %d locked" key id
          | Mig_in, Some st when st <> Cvm.Destroyed ->
              fail "aborted in-session %s left CVM %d %s" key id
                (Cvm.state_to_string st)
          | _ -> ()
        end
      | Mig_aborted, None -> ());
      if s.mg_role = Mig_out && s.mg_phase = Mig_active then begin
        incr checked;
        if s.mg_stalls > s.mg_budget then
          fail "out-session %s exceeded its retry budget (%d > %d)" key
            s.mg_stalls s.mg_budget
      end)
    t.sessions;
  List.iter
    (fun cvm ->
      match cvm.Cvm.state with
      | Cvm.Migrating_out | Cvm.Migrating_in ->
          incr checked;
          if not (Hashtbl.mem mig_owner cvm.Cvm.id) then
            fail "CVM %d is %s with no active migration session" cvm.Cvm.id
              (Cvm.state_to_string cvm.Cvm.state)
      | _ -> ())
    live;
  (* 9. TLB coherence. With VMID-tagged retention a translation can
     outlive the switch that installed it, so precision bugs surface
     here: no hart may cache an entry targeting a free secure block, a
     secure page its CVM no longer maps (scrubbed / relinquished), or
     secure memory at all under a VMID that belongs to no runnable CVM
     (host, normal VMs, quarantined, destroyed or migrated-out
     guests). *)
  let mapped_pa = Hashtbl.create 256 in
  List.iter
    (fun cvm ->
      Spt.fold_private cvm.Cvm.spt
        (fun ~gpa:_ ~pa () -> Hashtbl.replace mapped_pa (cvm.Cvm.id, pa) ())
        ())
    live;
  let live_by_id = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace live_by_id c.Cvm.id c) live;
  Array.iteri
    (fun i hart ->
      Tlb.fold hart.Hart.tlb
        (fun ~asid:_ ~vmid ~vpage entry () ->
          incr checked;
          let pa = entry.Tlb.pa_page in
          if Secmem.contains t.sm pa then begin
            let base = Int64.mul (Int64.div pa blk) blk in
            if Hashtbl.mem free_bases base then
              fail
                "hart %d TLB: vmid %d vpage 0x%Lx targets PA 0x%Lx in \
                 free block 0x%Lx"
                i vmid vpage pa base
            else
              match Hashtbl.find_opt live_by_id vmid with
              | None ->
                  fail
                    "hart %d TLB: vmid %d (no live CVM) still translates \
                     vpage 0x%Lx to secure PA 0x%Lx"
                    i vmid vpage pa
              | Some c when c.Cvm.state = Cvm.Quarantined ->
                  fail
                    "hart %d TLB: quarantined CVM %d still translates \
                     vpage 0x%Lx to secure PA 0x%Lx"
                    i vmid vpage pa
              | Some c ->
                  if not (Hashtbl.mem mapped_pa (c.Cvm.id, pa)) then
                    fail
                      "hart %d TLB: CVM %d caches vpage 0x%Lx -> PA \
                       0x%Lx it no longer maps"
                      i vmid vpage pa
          end)
        ())
    t.machine.Machine.harts;
  (* 10. SWIOTLB / bounce hygiene. Every page of the bounce window —
     descriptor page, exitless ring page, bounce slots — is host
     territory by construction, so wherever a live CVM's shared
     subtree maps one, the backing PA must be outside the secure pool
     and unaccounted to any CVM; and no two SWIOTLB pages of one CVM
     may share a PA (an aliased bounce slot hands the same buffer to
     two concurrent requests). *)
  let swiotlb_gpas = Layout.swiotlb_page_gpas () in
  List.iter
    (fun cvm ->
      let seen_bounce = Hashtbl.create 67 in
      List.iter
        (fun gpa ->
          match Spt.lookup cvm.Cvm.spt ~gpa with
          | None -> ()
          | Some pa ->
              check
                (not (Secmem.contains t.sm pa))
                "CVM %d bounce page GPA 0x%Lx aliases secure PA 0x%Lx"
                cvm.Cvm.id gpa pa;
              check
                (not (Hashtbl.mem t.page_owner pa))
                "CVM %d bounce page GPA 0x%Lx aliases owned private PA \
                 0x%Lx"
                cvm.Cvm.id gpa pa;
              (match Hashtbl.find_opt seen_bounce pa with
              | Some other ->
                  fail
                    "CVM %d bounce pages GPA 0x%Lx and GPA 0x%Lx alias \
                     the same PA 0x%Lx"
                    cvm.Cvm.id other gpa pa
              | None -> Hashtbl.add seen_bounce pa gpa);
              incr checked)
        swiotlb_gpas)
    live;
  (* 11. Channel ownership. A live channel's ring page lies inside the
     secure pool (so §1's PMP closure keeps it host-unreachable),
     belongs to no CVM in [page_owner], sits in no free block, and is
     mapped at the slot GPA by exactly its two endpoints iff the
     channel is established — by nobody while merely offered. No live
     channel may keep a destroyed or quarantined endpoint reachable,
     and a dead channel holds no page at all. *)
  Hashtbl.iter
    (fun _ ch ->
      match (ch.ch_phase, ch.ch_page) with
      | (Chan_offered | Chan_established), None ->
          fail "live channel %d holds no ring page" ch.ch_id
      | (Chan_offered | Chan_established), Some pa ->
          check (Secmem.contains t.sm pa)
            "channel %d ring page 0x%Lx lies outside the secure pool"
            ch.ch_id pa;
          check
            (not (Hashtbl.mem t.page_owner pa))
            "channel %d ring page 0x%Lx is also CVM-owned" ch.ch_id pa;
          let base = Int64.mul (Int64.div pa blk) blk in
          check
            (not (Hashtbl.mem free_bases base))
            "channel %d ring page 0x%Lx lies in free block 0x%Lx" ch.ch_id
            pa base;
          List.iter
            (fun id ->
              incr checked;
              match find_cvm t id with
              | None -> fail "channel %d endpoint CVM %d missing" ch.ch_id id
              | Some c -> (
                  match c.Cvm.state with
                  | Cvm.Destroyed | Cvm.Quarantined ->
                      fail "live channel %d endpoint CVM %d is %s" ch.ch_id
                        id
                        (Cvm.state_to_string c.Cvm.state)
                  | _ -> ()))
            [ ch.ch_a; ch.ch_b ];
          let maps id =
            match find_cvm t id with
            | Some c when c.Cvm.state <> Cvm.Destroyed ->
                Spt.lookup c.Cvm.spt ~gpa:ch.ch_gpa = Some pa
            | _ -> false
          in
          (match ch.ch_phase with
          | Chan_established ->
              check
                (maps ch.ch_a && maps ch.ch_b)
                "established channel %d is not mapped by both endpoints"
                ch.ch_id
          | _ ->
              check
                ((not (maps ch.ch_a)) && not (maps ch.ch_b))
                "offered channel %d ring page 0x%Lx is already mapped"
                ch.ch_id pa)
      | (Chan_revoked | Chan_degraded), Some pa ->
          fail "dead channel %d still holds ring page 0x%Lx" ch.ch_id pa
      | (Chan_revoked | Chan_degraded), None -> incr checked)
    t.channels;
  if !findings = [] then Ok !checked else Error (List.rev !findings)

(* ---------- crash consistency: reboot + journal recovery ---------- *)

let journal t = t.journal

(* Model a host/SM crash on the same monitor value: everything volatile
   — hart CSRs (PMP, TLB, delegation, translation roots), the IOPMP's
   device registers, the guard's epoch caches, and the SM's scratch
   tables — is wiped; everything durable (secure-NVRAM model: the pool
   list, the CVM table, page ownership, sessions, seals, freed-page
   pools, the journal itself) survives untouched. *)
let crash_reboot t =
  Journal.disarm t.journal;
  Array.iteri
    (fun i hart ->
      let csr = hart.Hart.csr in
      for e = 0 to 15 do
        Pmp.clear csr.Csr.pmp e
      done;
      Tlb.flush_all hart.Hart.tlb;
      Hart.invalidate_fast_path hart;
      csr.Csr.satp <- 0L;
      csr.Csr.hgatp <- 0L;
      csr.Csr.medeleg <- 0L;
      csr.Csr.mideleg <- 0L;
      csr.Csr.hedeleg <- 0L;
      csr.Csr.hideleg <- 0L;
      hart.Hart.mode <- Priv.M;
      hart.Hart.pc <- 0L;
      let h = t.host.(i) in
      h.h_satp <- 0L;
      h.h_hgatp <- 0L;
      h.h_medeleg <- Deleg_policy.normal_medeleg;
      h.h_mideleg <- Deleg_policy.normal_mideleg;
      h.h_hedeleg <- Deleg_policy.normal_hedeleg;
      h.h_hideleg <- Deleg_policy.normal_hideleg;
      h.h_mode <- Priv.HS;
      h.h_pc <- 0L)
    t.machine.Machine.harts;
  Pmp_guard.reset t.guard;
  (* IOPMP config registers reset to the deny-by-default power-on
     state: standing deny entries and the permissive default are gone
     until [recover] reprograms them. *)
  let iopmp = Bus.iopmp t.machine.Machine.bus in
  List.iter
    (fun (base, size) -> Iopmp.remove_deny iopmp ~base ~size)
    (Secmem.regions t.sm);
  Iopmp.allow_all_default iopmp false;
  Hashtbl.reset t.pending_mmio;
  Hashtbl.reset t.expand_retry;
  Hashtbl.reset t.staged_reg;
  Hashtbl.reset t.last_seen;
  Metrics.Registry.inc t.registry "sm.crash_reboot"

type recovery_report = {
  rr_pending : int;
  rr_rolled_forward : int;
  rr_rolled_back : int;
  rr_parked : int;
  rr_pmp_synced : int;
  rr_detail : string list;
}

let pinned_by_active_out_session t id =
  Hashtbl.fold
    (fun _ s acc ->
      acc
      || (s.mg_role = Mig_out && s.mg_phase = Mig_active
         && s.mg_cvm = Some id))
    t.sessions false

(* Replay one pending record. Every branch is idempotent: recovery may
   itself crash at any of the journal points it emits, and the next
   recovery replays the same record again. Checkpoints/completion marks
   are written by [recover], not here (except destroy_replay's own). *)
let replay_record t ~note ~fwd ~back (r : Journal.record) =
  match r.Journal.op with
  | Journal.Op_create { cvm = id; block_base; nvcpus = _ } -> (
      incr back;
      (* Never mint the journaled id again, even though the op dies. *)
      if t.next_cvm_id <= id then t.next_cvm_id <- id + 1;
      match find_cvm t id with
      | Some cvm ->
          note
            (Printf.sprintf "create #%d: rolled back half-built CVM %d"
               r.Journal.seq id);
          destroy_replay ~record:r t cvm
      | None ->
          (* The block may have been popped without the CVM ever
             reaching the table: scrub the orphan and re-link it. *)
          if
            Secmem.contains t.sm block_base
            && not (Secmem.is_free_base t.sm block_base)
          then begin
            Physmem.zero_range
              (Bus.dram t.machine.Machine.bus)
              (Int64.sub block_base Bus.dram_base)
              (Secmem.block_size t.sm);
            ignore (Hier_alloc.reclaim_base t.sm ~base:block_base);
            note
              (Printf.sprintf
                 "create #%d: reclaimed orphaned block 0x%Lx" r.Journal.seq
                 block_base)
          end)
  | Journal.Op_load { cvm = id; _ } -> (
      incr back;
      match find_cvm t id with
      | Some cvm when cvm.Cvm.state = Cvm.Created ->
          (* The measurement is torn mid-extend and can never seal to
             anything attestable: scrub the instance, let the host
             rebuild it from the original image. *)
          note
            (Printf.sprintf "load #%d: rolled back torn CVM %d"
               r.Journal.seq id);
          destroy_replay ~record:r t cvm
      | _ -> ())
  | Journal.Op_expand { base; size } ->
      if List.exists (fun r' -> r' = (base, size)) (Secmem.regions t.sm)
      then begin
        incr fwd;
        (* The region is durably linked; the global PMP/IOPMP resync
           that recovery always performs finishes the registration. *)
        note
          (Printf.sprintf "expand #%d: region 0x%Lx kept (PMP resynced)"
             r.Journal.seq base)
      end
      else begin
        incr back;
        note
          (Printf.sprintf "expand #%d: region 0x%Lx never linked; dropped"
             r.Journal.seq base)
      end
  | Journal.Op_relinquish { cvm = id; gpa; pa } -> (
      match find_cvm t id with
      | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
          incr fwd;
          (match Spt.lookup cvm.Cvm.spt ~gpa with
          | Some pa' when pa' = pa ->
              ignore (Spt.unmap_private cvm.Cvm.spt ~gpa)
          | _ -> ());
          Physmem.zero_range
            (Bus.dram t.machine.Machine.bus)
            (Int64.sub pa Bus.dram_base) 4096L;
          Journal.checkpoint t.journal r "scrubbed";
          (* TLBs are empty after the reboot, so no shootdown is owed;
             just make sure the page lands in the freed pool exactly
             once. *)
          let lst =
            match Hashtbl.find_opt t.freed_pages id with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add t.freed_pages id l;
                l
          in
          if not (List.mem pa !lst) then lst := pa :: !lst;
          note
            (Printf.sprintf
               "relinquish #%d: CVM %d page 0x%Lx scrubbed and pooled"
               r.Journal.seq id pa)
      | _ -> incr back)
  | Journal.Op_destroy { cvm = id } -> (
      incr fwd;
      match find_cvm t id with
      | Some cvm ->
          note
            (Printf.sprintf "destroy #%d: finished scrubbing CVM %d"
               r.Journal.seq id);
          destroy_replay ~record:r t cvm
      | None -> ())
  | Journal.Op_quarantine { cvm = id; reason } -> (
      incr fwd;
      match find_cvm t id with
      | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
          if cvm.Cvm.state <> Cvm.Quarantined then
            Metrics.Registry.inc t.registry "cvm.quarantined";
          cvm.Cvm.state <- Cvm.Quarantined;
          cvm.Cvm.quarantine_reason <- Some reason;
          Spt.clear_shared_root cvm.Cvm.spt;
          chan_sweep_for t id ~reason:"endpoint quarantined";
          note
            (Printf.sprintf "quarantine #%d: CVM %d re-parked"
               r.Journal.seq id)
      | _ -> ())
  | Journal.Op_mig_out_begin { session; cvm = id } -> (
      match find_session t Mig_out session with
      | Some s ->
          incr fwd;
          (match (s.mg_phase, find_cvm t id) with
          | Mig_active, Some cvm
            when cvm.Cvm.state = Cvm.Suspended
                 || cvm.Cvm.state = Cvm.Runnable ->
              cvm.Cvm.state <- Cvm.Migrating_out;
              note
                (Printf.sprintf "out-begin #%d: re-locked CVM %d"
                   r.Journal.seq id)
          | _ -> ())
      | None -> (
          incr back;
          (* The lock landed but the session record did not: release the
             CVM — the host never learned a session existed. *)
          match find_cvm t id with
          | Some cvm
            when cvm.Cvm.state = Cvm.Migrating_out
                 && not (pinned_by_active_out_session t id) ->
              cvm.Cvm.state <- Cvm.Suspended;
              note
                (Printf.sprintf "out-begin #%d: released CVM %d"
                   r.Journal.seq id)
          | _ -> ()))
  | Journal.Op_mig_out_abort { session } -> (
      incr fwd;
      match find_session t Mig_out session with
      | Some s when s.mg_phase <> Mig_committed ->
          (match s.mg_cvm with
          | Some id -> (
              match find_cvm t id with
              | Some cvm when cvm.Cvm.state = Cvm.Migrating_out ->
                  cvm.Cvm.state <- Cvm.Suspended
              | _ -> ())
          | None -> ());
          s.mg_phase <- Mig_aborted;
          note
            (Printf.sprintf "out-abort #%d: session %s aborted"
               r.Journal.seq session)
      | _ -> ())
  | Journal.Op_mig_out_commit { session } -> (
      incr fwd;
      match find_session t Mig_out session with
      | Some s when s.mg_phase <> Mig_aborted ->
          s.mg_phase <- Mig_committed;
          Journal.checkpoint t.journal r "committed";
          (match s.mg_cvm with
          | Some id -> (
              match find_cvm t id with
              | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
                  destroy_replay ~record:r t cvm
              | _ -> ())
          | None -> ());
          note
            (Printf.sprintf
               "out-commit #%d: session %s committed, source scrubbed"
               r.Journal.seq session)
      | _ -> ())
  | Journal.Op_mig_in_prepare p -> (
      incr back;
      (match p.built with
      | Some id -> (
          match find_cvm t id with
          | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
              note
                (Printf.sprintf
                   "in-prepare #%d: rolled back half-restored CVM %d"
                   r.Journal.seq id);
              destroy_replay ~record:r t cvm
          | _ -> ())
      | None -> ());
      match find_session t Mig_in p.session with
      | Some s when s.mg_phase = Mig_active -> (
          (* the session may still point at an instance that no longer
             exists (re-prepare destroyed the old one mid-swap) *)
          match s.mg_cvm with
          | Some id
            when (match find_cvm t id with
                 | Some c -> c.Cvm.state = Cvm.Destroyed
                 | None -> true) ->
              s.mg_cvm <- None
          | _ -> ())
      | _ -> ())
  | Journal.Op_mig_in_commit { session } -> (
      incr fwd;
      match find_session t Mig_in session with
      | Some s when s.mg_phase = Mig_active -> (
          match s.mg_cvm with
          | Some id -> (
              match find_cvm t id with
              | Some cvm when cvm.Cvm.state = Cvm.Migrating_in ->
                  cvm.Cvm.state <- Cvm.Suspended;
                  Journal.checkpoint t.journal r "activated";
                  s.mg_phase <- Mig_committed;
                  note
                    (Printf.sprintf "in-commit #%d: CVM %d activated"
                       r.Journal.seq id)
              | Some cvm when cvm.Cvm.state = Cvm.Suspended ->
                  s.mg_phase <- Mig_committed;
                  note
                    (Printf.sprintf
                       "in-commit #%d: session %s marked committed"
                       r.Journal.seq session)
              | _ -> ())
          | None -> ())
      | _ -> ())
  | Journal.Op_mig_in_abort { session } -> (
      incr fwd;
      match find_session t Mig_in session with
      | Some s when s.mg_phase <> Mig_committed ->
          (match s.mg_cvm with
          | Some id -> (
              match find_cvm t id with
              | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
                  destroy_replay ~record:r t cvm
              | _ -> ())
          | None -> ());
          s.mg_phase <- Mig_aborted;
          s.mg_cvm <- None;
          note
            (Printf.sprintf "in-abort #%d: session %s aborted"
               r.Journal.seq session)
      | _ -> ())
  | Journal.Op_import p -> (
      incr back;
      match p.built with
      | Some id -> (
          match find_cvm t id with
          | Some cvm when cvm.Cvm.state <> Cvm.Destroyed ->
              note
                (Printf.sprintf
                   "import #%d: rolled back half-restored CVM %d"
                   r.Journal.seq id);
              destroy_replay ~record:r t cvm
          | _ -> ())
      | None -> ())
  | Journal.Op_chan_grant { chan; a = _; b = _; block_base } -> (
      incr back;
      (* Channel ids double as slot indices: never mint this one
         again. *)
      if t.next_chan_id <= chan then t.next_chan_id <- chan + 1;
      match find_channel t chan with
      | Some ch ->
          note
            (Printf.sprintf "chan-grant #%d: rolled back torn offer %d"
               r.Journal.seq chan);
          chan_teardown t ch ~phase:Chan_revoked ~reason:"offer rolled back"
      | None ->
          (* The ring block may have been popped without the channel
             ever reaching the table: scrub the orphan and re-link
             it. *)
          if
            Secmem.contains t.sm block_base
            && not (Secmem.is_free_base t.sm block_base)
          then begin
            Physmem.zero_range
              (Bus.dram t.machine.Machine.bus)
              (Int64.sub block_base Bus.dram_base)
              (Secmem.block_size t.sm);
            ignore (Hier_alloc.reclaim_base t.sm ~base:block_base);
            note
              (Printf.sprintf
                 "chan-grant #%d: reclaimed orphaned ring block 0x%Lx"
                 r.Journal.seq block_base)
          end)
  | Journal.Op_chan_accept { chan } -> (
      incr back;
      match find_channel t chan with
      | Some ch when chan_live ch ->
          (* Roll back to the offered state: the accepting side never
             learned the establishment happened, so whichever of the two
             map installs landed is removed again. TLBs are cold after
             the reboot — no shootdown is owed. *)
          (match ch.ch_page with
          | Some pa ->
              let unmap id =
                match find_cvm t id with
                | Some c when c.Cvm.state <> Cvm.Destroyed -> (
                    match Spt.lookup c.Cvm.spt ~gpa:ch.ch_gpa with
                    | Some pa' when pa' = pa ->
                        ignore (Spt.unmap_private c.Cvm.spt ~gpa:ch.ch_gpa)
                    | _ -> ())
                | _ -> ()
              in
              unmap ch.ch_a;
              unmap ch.ch_b
          | None -> ());
          ch.ch_phase <- Chan_offered;
          ch.ch_seq_ab <- 0L;
          ch.ch_seq_ba <- 0L;
          ch.ch_strikes <- 0;
          note
            (Printf.sprintf
               "chan-accept #%d: rolled channel %d back to offered"
               r.Journal.seq chan)
      | _ -> ())
  | Journal.Op_chan_revoke { chan; degraded } -> (
      incr fwd;
      match find_channel t chan with
      | Some ch when chan_live ch ->
          let phase = if degraded then Chan_degraded else Chan_revoked in
          chan_teardown t ch ~phase
            ~reason:
              (if degraded then "degraded (recovery replay)"
               else "revoked (recovery replay)");
          note
            (Printf.sprintf "chan-revoke #%d: finished tearing down %d"
               r.Journal.seq chan)
      | _ -> ())

let recover t =
  let detail = ref [] in
  let note m = detail := m :: !detail in
  let fwd = ref 0 and back = ref 0 in
  let observing = obs t in
  if observing then Metrics.Trace.span_begin t.trace "sm.recover";
  (* 1. Rebuild the volatile security state from durable ground truth:
     boot-equivalent delegation, PMP closure over every registered
     region, IOPMP denies, and cold TLBs on every hart. *)
  let synced = ref 0 in
  Array.iter
    (fun hart ->
      Deleg_policy.apply_normal hart;
      if Pmp_guard.sync_hart t.guard hart t.sm ~cvm_open:false then
        incr synced;
      hart.Hart.mode <- Priv.HS;
      Tlb.flush_all hart.Hart.tlb;
      Hart.invalidate_fast_path hart)
    t.machine.Machine.harts;
  let iopmp = Bus.iopmp t.machine.Machine.bus in
  Iopmp.allow_all_default iopmp true;
  Pmp_guard.guard_iopmp t.guard iopmp t.sm;
  charge t "sm_recover"
    ((!synced * t.cost.Cost.pmp_toggle) + t.cost.Cost.pmp_toggle
    + (Array.length t.machine.Machine.harts * t.cost.Cost.tlb_full_flush));
  (* 2. Park anything the crash caught mid-run. The secure vCPU image
     is only written at world-switch-out, so the seal taken at the last
     legitimate exit (or at creation) still matches — parking is safe
     without re-sealing. *)
  let parked = ref 0 in
  Hashtbl.iter
    (fun _ cvm ->
      if cvm.Cvm.state = Cvm.Running then begin
        cvm.Cvm.state <- Cvm.Suspended;
        incr parked;
        note (Printf.sprintf "parked CVM %d (was Running)" cvm.Cvm.id)
      end)
    t.cvms;
  (* 3. Replay every pending intent in sequence order. A record is
     marked done only after its replay completed, so a crash during
     recovery (the replay's own journal points) re-replays it. *)
  let pending = Journal.pending t.journal in
  List.iter
    (fun r ->
      replay_record t ~note ~fwd ~back r;
      Journal.mark_done t.journal r)
    pending;
  Journal.compact t.journal;
  Metrics.Registry.inc t.registry "sm.recover";
  Metrics.Registry.inc t.registry ~by:!fwd "sm.recover.rolled_forward";
  Metrics.Registry.inc t.registry ~by:!back "sm.recover.rolled_back";
  if observing then
    Metrics.Trace.span_end t.trace
      ~args:
        [
          ("pending", string_of_int (List.length pending));
          ("forward", string_of_int !fwd);
          ("back", string_of_int !back);
        ]
      "sm.recover";
  {
    rr_pending = List.length pending;
    rr_rolled_forward = !fwd;
    rr_rolled_back = !back;
    rr_parked = !parked;
    rr_pmp_synced = !synced;
    rr_detail = List.rev !detail;
  }
