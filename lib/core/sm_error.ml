type t =
  | Invalid_param
  | Denied
  | No_memory
  | Not_found
  | Bad_state
  | Invalid_address
  | Already_exists
  | No_pending_exit
  | Quarantined
  | Internal of string

let code = function
  | Invalid_param -> -3L
  | Denied -> -4L
  | No_memory -> -5L
  | Not_found -> -6L
  | Bad_state -> -7L
  | Invalid_address -> -8L
  | Already_exists -> -9L
  | No_pending_exit -> -10L
  | Quarantined -> -11L
  | Internal _ -> -12L

let of_code = function
  | -3L -> Some Invalid_param
  | -4L -> Some Denied
  | -5L -> Some No_memory
  | -6L -> Some Not_found
  | -7L -> Some Bad_state
  | -8L -> Some Invalid_address
  | -9L -> Some Already_exists
  | -10L -> Some No_pending_exit
  | -11L -> Some Quarantined
  | -12L -> Some (Internal "")
  | _ -> None

let to_string = function
  | Invalid_param -> "invalid parameter"
  | Denied -> "access denied"
  | No_memory -> "out of secure memory"
  | Not_found -> "no such object"
  | Bad_state -> "object in wrong state"
  | Invalid_address -> "address out of range or misaligned"
  | Already_exists -> "object already exists"
  | No_pending_exit -> "no pending exit"
  | Quarantined -> "CVM is quarantined"
  | Internal msg ->
      if msg = "" then "internal monitor fault"
      else "internal monitor fault: " ^ msg

let all =
  [
    Invalid_param; Denied; No_memory; Not_found; Bad_state; Invalid_address;
    Already_exists; No_pending_exit; Quarantined; Internal "";
  ]

let guard f =
  try f () with
  | Stack_overflow -> Error (Internal "stack overflow")
  | e -> Error (Internal (Printexc.to_string e))
