type phase = Span_begin | Span_end | Instant | Counter of int

type event = {
  ts : int;
  name : string;
  phase : phase;
  hart : int;
  cvm : int;
  vcpu : int;
  args : (string * string) list;
}

let dummy =
  { ts = 0; name = ""; phase = Instant; hart = -1; cvm = -1; vcpu = -1;
    args = [] }

type t = {
  mutable enabled : bool;
  cap : int;
  buf : event array;
  mutable next : int; (* ring write cursor *)
  mutable recorded : int;
  mutable lost : int; (* wraparound losses folded in by [clear] *)
  mutable ctx : Span.ctx; (* current causal context, stamped on events *)
  mutable ctx_args : (string * string) list; (* precomputed Span.to_args ctx *)
  mutable coalesced : int; (* counter samples absorbed by the eviction guard *)
  counter_idx : (string, int) Hashtbl.t; (* counter name -> last slot *)
  clock : unit -> int;
}

let create ?(capacity = 65536) ~clock () =
  if capacity <= 0 then invalid_arg "Trace.create: non-positive capacity";
  { enabled = false; cap = capacity; buf = Array.make capacity dummy;
    next = 0; recorded = 0; lost = 0; ctx = Span.none; ctx_args = [];
    coalesced = 0; counter_idx = Hashtbl.create 16; clock }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let clear t =
  t.lost <- t.lost + max 0 (t.recorded - t.cap);
  Array.fill t.buf 0 t.cap dummy;
  t.next <- 0;
  t.recorded <- 0;
  Hashtbl.reset t.counter_idx

let set_ctx t c =
  if t.enabled then begin
    t.ctx <- c;
    t.ctx_args <- Span.to_args c
  end

let clear_ctx t =
  t.ctx <- Span.none;
  t.ctx_args <- []

let ctx t = t.ctx

let record t phase ~hart ~cvm ~vcpu ~args name =
  let args =
    match t.ctx_args with
    | [] -> args
    | stamp -> ( match args with [] -> stamp | _ -> args @ stamp)
  in
  t.buf.(t.next) <- { ts = t.clock (); name; phase; hart; cvm; vcpu; args };
  t.next <- (t.next + 1) mod t.cap;
  t.recorded <- t.recorded + 1

let span_begin t ?(hart = -1) ?(cvm = -1) ?(vcpu = -1) ?(args = []) name =
  if t.enabled then record t Span_begin ~hart ~cvm ~vcpu ~args name

let span_end t ?(hart = -1) ?(cvm = -1) ?(vcpu = -1) ?(args = []) name =
  if t.enabled then record t Span_end ~hart ~cvm ~vcpu ~args name

let instant t ?(hart = -1) ?(cvm = -1) ?(vcpu = -1) ?(args = []) name =
  if t.enabled then record t Instant ~hart ~cvm ~vcpu ~args name

(* Counter samples are high-rate and low-value relative to span
   structure, so once the ring has wrapped they must not evict
   non-counter events.  While the ring still has virgin slots a
   counter records normally; after wraparound, if the eviction victim
   is itself a counter we also record normally (counters evicting
   counters is fine), otherwise the sample is folded into the most
   recent buffered sample of the same counter (updating its value and
   timestamp in place) or, failing that, dropped.  Either guarded
   outcome increments [coalesced]. *)
let counter t ?(hart = -1) ?(cvm = -1) name value =
  if t.enabled then begin
    let full = t.recorded >= t.cap in
    let victim_is_counter =
      (not full) || match t.buf.(t.next).phase with Counter _ -> true
                    | _ -> false
    in
    if victim_is_counter then begin
      Hashtbl.replace t.counter_idx name t.next;
      record t (Counter value) ~hart ~cvm ~vcpu:(-1) ~args:[] name
    end
    else begin
      (match Hashtbl.find_opt t.counter_idx name with
      | Some slot -> (
          (* The remembered slot may have been overwritten by ring
             wraparound since; only update in place if it still holds
             this counter. *)
          match t.buf.(slot) with
          | { phase = Counter _; name = n; _ } as old when n = name ->
              t.buf.(slot) <-
                { old with ts = t.clock (); phase = Counter value }
          | _ -> ())
      | None -> ());
      t.coalesced <- t.coalesced + 1
    end
  end

let recorded t = t.recorded
let dropped t = t.lost + max 0 (t.recorded - t.cap)
let coalesced t = t.coalesced
let capacity t = t.cap

let events t =
  let n = min t.recorded t.cap in
  let start = if t.recorded <= t.cap then 0 else t.next in
  List.init n (fun i -> t.buf.((start + i) mod t.cap))

(* ---------- JSON emission ---------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"'

let add_args b args =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_str b k;
      Buffer.add_char b ':';
      add_str b v)
    args;
  Buffer.add_char b '}'

let phase_letter = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter _ -> "C"

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Printf.sprintf "{\"ts\":%d,\"ph\":\"" e.ts);
      Buffer.add_string b (phase_letter e.phase);
      Buffer.add_string b "\",\"name\":";
      add_str b e.name;
      Buffer.add_string b
        (Printf.sprintf ",\"hart\":%d,\"cvm\":%d,\"vcpu\":%d" e.hart e.cvm
           e.vcpu);
      (match e.phase with
      | Counter v -> Buffer.add_string b (Printf.sprintf ",\"value\":%d" v)
      | _ -> ());
      if e.args <> [] then begin
        Buffer.add_string b ",\"args\":";
        add_args b e.args
      end;
      Buffer.add_string b "}\n")
    (events t);
  Buffer.contents b

let to_chrome ?(cycles_per_us = 100.) t =
  let evs = events t in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let emit_sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n"
  in
  (* Process-name metadata: one entry per distinct pid. *)
  let pids = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let pid = if e.cvm < 0 then 0 else e.cvm in
      if not (Hashtbl.mem pids pid) then Hashtbl.add pids pid ())
    evs;
  let named =
    List.sort compare (Hashtbl.fold (fun pid () acc -> pid :: acc) pids [])
  in
  List.iter
    (fun pid ->
      emit_sep ();
      let name = if pid = 0 then "host/secure-monitor" else
          Printf.sprintf "cvm-%d" pid in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           pid name))
    named;
  List.iter
    (fun e ->
      emit_sep ();
      let pid = if e.cvm < 0 then 0 else e.cvm in
      let tid = if e.hart < 0 then 0 else e.hart in
      let ts = float_of_int e.ts /. cycles_per_us in
      Buffer.add_string b "{\"name\":";
      add_str b e.name;
      Buffer.add_string b
        (Printf.sprintf
           ",\"cat\":\"zion\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d"
           (phase_letter e.phase) ts pid tid);
      (match e.phase with Instant -> Buffer.add_string b ",\"s\":\"t\""
      | _ -> ());
      (match e.phase with
      | Counter v ->
          Buffer.add_string b (Printf.sprintf ",\"args\":{\"value\":%d}" v)
      | _ ->
          let args =
            if e.vcpu >= 0 then ("vcpu", string_of_int e.vcpu) :: e.args
            else e.args
          in
          if args <> [] then begin
            Buffer.add_string b ",\"args\":";
            add_args b args
          end);
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
