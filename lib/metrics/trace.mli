(** Flight recorder — a fixed-capacity ring buffer of structured events.

    The trace is the event-level companion of the cycle {!Ledger}: where
    the ledger answers "how many cycles went to category X in total",
    the trace answers "show me {e one} world switch / stage-3 fault /
    Check-after-Load rejection as an event in time". Events are stamped
    with the ledger's cycle clock (injected as [clock] at creation) plus
    hart / CVM / vCPU identity, and can be exported as JSON-lines or as
    Chrome [trace_event] JSON loadable in [chrome://tracing] and
    Perfetto.

    Recording is disabled by default. While disabled every recording
    function returns after a single mutable-field test and allocates
    nothing; instrumented call sites that would build argument lists
    should guard on {!is_enabled} first. When the ring is full the
    oldest events are overwritten and counted in {!dropped} — except
    counter samples, which after wraparound may never evict
    non-counter events (see {!counter} and {!coalesced}).

    A causal {!Span.ctx} can be installed with {!set_ctx}; while one
    is installed every recorded event carries
    [trace]/[span]/[parent] args, so the Chrome-trace export can
    stitch all the events one request caused into a single tree. *)

type phase =
  | Span_begin  (** start of a duration span (Chrome ["B"]) *)
  | Span_end  (** end of a duration span (Chrome ["E"]) *)
  | Instant  (** a point event (Chrome ["i"]) *)
  | Counter of int  (** a sampled counter value (Chrome ["C"]) *)

type event = {
  ts : int;  (** ledger cycles at recording time *)
  name : string;
  phase : phase;
  hart : int;  (** [-1] when not hart-specific *)
  cvm : int;  (** [-1] for the host / Secure Monitor itself *)
  vcpu : int;  (** [-1] when not vCPU-specific *)
  args : (string * string) list;
}

type t

val create : ?capacity:int -> clock:(unit -> int) -> unit -> t
(** Default capacity is 65536 events. [clock] is sampled once per
    recorded event; bind it to [Ledger.now] of the platform ledger. *)

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool

val clear : t -> unit
(** Drop all buffered events and zero {!recorded}. Wraparound losses
    accumulated so far are folded into a persistent tally, so
    {!dropped} survives [clear] (and disable/re-enable cycles). *)

val set_ctx : t -> Span.ctx -> unit
(** Install the causal context stamped on every subsequently recorded
    event. A no-op while the trace is disabled (so the disabled path
    stays allocation-free). *)

val clear_ctx : t -> unit
(** Remove the installed context. Safe (and cheap) in any state. *)

val ctx : t -> Span.ctx
(** The currently installed context, or [Span.none]. *)

val span_begin :
  t -> ?hart:int -> ?cvm:int -> ?vcpu:int ->
  ?args:(string * string) list -> string -> unit

val span_end :
  t -> ?hart:int -> ?cvm:int -> ?vcpu:int ->
  ?args:(string * string) list -> string -> unit

val instant :
  t -> ?hart:int -> ?cvm:int -> ?vcpu:int ->
  ?args:(string * string) list -> string -> unit

val counter : t -> ?hart:int -> ?cvm:int -> string -> int -> unit
(** [counter t name v] records a sampled counter value (a Perfetto
    counter track). Once the ring has wrapped, a counter sample whose
    eviction victim is a non-counter event does not evict it: the
    sample instead updates the most recent buffered sample of the
    same counter in place (value and timestamp), or is dropped if
    none survives in the ring. Either outcome counts in
    {!coalesced}. This guarantees a flood of counter samples can
    never flush span structure out of the ring. *)

val events : t -> event list
(** Buffered events, oldest first. *)

val recorded : t -> int
(** Total events recorded since creation (or [clear]), including any
    that have since been overwritten. *)

val dropped : t -> int
(** Cumulative events lost to ring wraparound since creation,
    including losses from before any [clear]:
    [lost_before_clears + max 0 (recorded - capacity)]. *)

val coalesced : t -> int
(** Counter samples absorbed (updated in place or dropped) by the
    eviction guard instead of evicting a non-counter event. *)

val capacity : t -> int

val to_jsonl : t -> string
(** One JSON object per line:
    [{"ts":..,"ph":"B","name":..,"hart":..,"cvm":..,"vcpu":..,"args":{..}}]. *)

val to_chrome : ?cycles_per_us:float -> t -> string
(** Chrome [trace_event] JSON (the [{"traceEvents":[...]}] object form).
    Spans and instants land on [pid] = CVM id (pid 0 is the host /
    Secure Monitor) and [tid] = hart; process-name metadata events label
    each pid. [cycles_per_us] converts ledger cycles to the format's
    microsecond timestamps and defaults to 100. (a 100 MHz clock). *)
