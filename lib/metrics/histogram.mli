(** Log-bucketed histogram of non-negative integer samples.

    Gives p50/p95/p99-style quantile estimates without retaining the
    samples: values are binned into log-linear buckets (32 sub-buckets
    per power of two, HdrHistogram-style), so any quantile is recovered
    to within {!max_rel_error} relative error while memory stays
    constant. Values 0–31 are binned exactly. Used by the
    {!Registry} for per-CVM latency distributions (entry/exit/fault
    cycles) on hot paths where keeping every sample would not scale. *)

type t

val create : unit -> t

val observe : t -> int -> unit
(** Record one sample. Negative values are clamped to 0. *)

val count : t -> int
val sum : t -> int

val mean : t -> float
(** [0.] when empty. *)

val min_value : t -> int
(** Exact minimum; [0] when empty. *)

val max_value : t -> int
(** Exact maximum; [0] when empty. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in \[0;100\]: the estimated value below which
    [p]% of the samples fall. Follows the same rank convention as
    [Stats.percentile] — rank [p/100 * (n-1)] with linear
    interpolation between the two straddling samples — estimating
    each sample by its bucket midpoint clamped to \[min;max\]. [0.]
    when empty. Raises [Invalid_argument] for [p] outside the
    range. *)

val max_rel_error : float
(** Worst-case relative error of {!quantile} vs the exact sample
    quantile: half a bucket width, 1/64. *)

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** One-line [count/mean/p50/p95/p99/max] rendering. *)
