type t = {
  mutable clock : int;
  totals : (string, int ref) Hashtbl.t;
  mutable gen : int;
      (* bumped on [reset], which orphans the refs cached by counters *)
}

let create () = { clock = 0; totals = Hashtbl.create 32; gen = 0 }
let now t = t.clock

let charge t category cycles =
  if cycles < 0 then invalid_arg "Ledger.charge: negative cycles";
  t.clock <- t.clock + cycles;
  match Hashtbl.find_opt t.totals category with
  | Some r -> r := !r + cycles
  | None -> Hashtbl.add t.totals category (ref cycles)

let advance t cycles =
  if cycles < 0 then invalid_arg "Ledger.advance: negative cycles";
  t.clock <- t.clock + cycles

let category_total t category =
  match Hashtbl.find_opt t.totals category with Some r -> !r | None -> 0

let categories t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let mark t = t.clock
let since t m = t.clock - m

type snapshot = { snap_clock : int; snap_totals : (string * int) list }

let snapshot t =
  {
    snap_clock = t.clock;
    snap_totals = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.totals [];
  }

let diff ~earlier ~later =
  let before = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace before k v) earlier.snap_totals;
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let d =
          v - (match Hashtbl.find_opt before k with Some b -> b | None -> 0)
        in
        if d <> 0 then Some (k, d) else None)
      later.snap_totals
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { snap_clock = later.snap_clock - earlier.snap_clock; snap_totals = deltas }

let snapshot_clock s = s.snap_clock
let snapshot_totals s = s.snap_totals

let reset t =
  t.clock <- 0;
  Hashtbl.reset t.totals;
  t.gen <- t.gen + 1

(* Pre-resolved handle for one category: hot paths charging the same
   category every instruction skip the string hash. The cached ref is
   resolved lazily on first tick (so a never-charged category does not
   appear in [categories]/[snapshot], exactly as with [charge]) and
   revalidated against the reset generation (a [reset] replaces the
   underlying refs). [tick c n] is observably identical to
   [charge t name n]. *)
type counter = {
  c_ledger : t;
  c_name : string;
  mutable c_gen : int;
  mutable c_ref : int ref;
}

let counter t name = { c_ledger = t; c_name = name; c_gen = -1; c_ref = ref 0 }

let tick c cycles =
  if cycles < 0 then invalid_arg "Ledger.tick: negative cycles";
  let t = c.c_ledger in
  t.clock <- t.clock + cycles;
  if c.c_gen <> t.gen then begin
    (match Hashtbl.find_opt t.totals c.c_name with
    | Some r -> c.c_ref <- r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.totals c.c_name r;
        c.c_ref <- r);
    c.c_gen <- t.gen
  end;
  c.c_ref := !(c.c_ref) + cycles
