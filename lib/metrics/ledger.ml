type t = { mutable clock : int; totals : (string, int ref) Hashtbl.t }

let create () = { clock = 0; totals = Hashtbl.create 32 }
let now t = t.clock

let charge t category cycles =
  if cycles < 0 then invalid_arg "Ledger.charge: negative cycles";
  t.clock <- t.clock + cycles;
  match Hashtbl.find_opt t.totals category with
  | Some r -> r := !r + cycles
  | None -> Hashtbl.add t.totals category (ref cycles)

let advance t cycles =
  if cycles < 0 then invalid_arg "Ledger.advance: negative cycles";
  t.clock <- t.clock + cycles

let category_total t category =
  match Hashtbl.find_opt t.totals category with Some r -> !r | None -> 0

let categories t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.totals []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let mark t = t.clock
let since t m = t.clock - m

type snapshot = { snap_clock : int; snap_totals : (string * int) list }

let snapshot t =
  {
    snap_clock = t.clock;
    snap_totals = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.totals [];
  }

let diff ~earlier ~later =
  let before = Hashtbl.create 32 in
  List.iter (fun (k, v) -> Hashtbl.replace before k v) earlier.snap_totals;
  let deltas =
    List.filter_map
      (fun (k, v) ->
        let d =
          v - (match Hashtbl.find_opt before k with Some b -> b | None -> 0)
        in
        if d <> 0 then Some (k, d) else None)
      later.snap_totals
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { snap_clock = later.snap_clock - earlier.snap_clock; snap_totals = deltas }

let snapshot_clock s = s.snap_clock
let snapshot_totals s = s.snap_totals

let reset t =
  t.clock <- 0;
  Hashtbl.reset t.totals
