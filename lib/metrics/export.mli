(** Machine-readable exporters for the telemetry plane.

    Renders a {!Registry} (and anything else the callers assemble) as
    either a JSON document or Prometheus text exposition format, and
    provides total parsers for both so tests and CI smoke jobs can
    assert the output round-trips. No external JSON dependency: the
    value type and recursive-descent parser live here. *)

(** A minimal JSON value. Numbers are floats (exact for the integer
    ranges the registry produces). *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val num_of_int : int -> json

val json_to_string : json -> string
(** Compact, valid JSON. Integral [Num]s print without a decimal
    point so the output round-trips textually for counter values. *)

val parse_json : string -> (json, string) result
(** Total recursive-descent parser for the subset [json_to_string]
    emits (which is standard JSON with [\uXXXX] escapes decoded to
    UTF-8). [Error] carries a position-annotated message. *)

val member : string -> json -> json option
(** [member k (Obj ..)] looks up key [k]; [None] otherwise. *)

val registry_to_json : ?extra:(string * json) list -> Registry.t -> json
(** [Obj] with ["counters"] (scope/name/value rows) and
    ["histograms"] (scope/name/count/sum/mean/p50/p95/p99/min/max
    rows), followed by any [extra] top-level fields. *)

val registry_to_prometheus : ?namespace:string -> Registry.t -> string
(** Prometheus text exposition. Counter ["ecall.create_cvm"] in scope
    [Cvm 1] becomes
    [zion_ecall_create_cvm_total{cvm="1"} 42]; histograms render as
    summaries: [quantile]-labelled sample lines plus [_count] and
    [_sum]. Metric names are sanitized to [[a-zA-Z0-9_:]].
    [namespace] defaults to ["zion"]. *)

val parse_prometheus :
  string -> ((string * (string * string) list * float) list, string) result
(** Parse text exposition back into [(metric, labels, value)] samples
    ([#] comment and blank lines skipped). Total; [Error] on any
    malformed sample line. *)
