type scope = Global | Cvm of int

type t = {
  counters : (scope * string, int ref) Hashtbl.t;
  histograms : (scope * string, Histogram.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 64; histograms = Hashtbl.create 16 }

let inc ?(scope = Global) ?(by = 1) t name =
  match Hashtbl.find_opt t.counters (scope, name) with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters (scope, name) (ref by)

let counter ?(scope = Global) t name =
  match Hashtbl.find_opt t.counters (scope, name) with
  | Some r -> !r
  | None -> 0

let observe ?(scope = Global) t name v =
  let h =
    match Hashtbl.find_opt t.histograms (scope, name) with
    | Some h -> h
    | None ->
        let h = Histogram.create () in
        Hashtbl.add t.histograms (scope, name) h;
        h
  in
  Histogram.observe h v

let histogram ?(scope = Global) t name =
  Hashtbl.find_opt t.histograms (scope, name)

let scope_order = function Global -> -1 | Cvm id -> id

let sorted fold tbl =
  fold (fun (scope, name) v acc -> (scope, name, v) :: acc) tbl []
  |> List.sort (fun (s1, n1, _) (s2, n2, _) ->
         match compare (scope_order s1) (scope_order s2) with
         | 0 -> compare n1 n2
         | c -> c)

let counters t =
  List.map (fun (s, n, r) -> (s, n, !r)) (sorted Hashtbl.fold t.counters)

let histograms t = sorted Hashtbl.fold t.histograms

let clear t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms

let scope_label = function
  | Global -> "global"
  | Cvm id -> Printf.sprintf "cvm %d" id

let dump t =
  let b = Buffer.create 1024 in
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string b
      (Table.render
         ~header:[ "scope"; "counter"; "value" ]
         (List.map
            (fun (s, n, v) -> [ scope_label s; n; string_of_int v ])
            cs));
    Buffer.add_char b '\n'
  end;
  let hs = histograms t in
  if hs <> [] then begin
    if cs <> [] then Buffer.add_char b '\n';
    Buffer.add_string b
      (Table.render
         ~header:
           [ "scope"; "histogram"; "n"; "mean"; "p50"; "p95"; "p99"; "max" ]
         (List.map
            (fun (s, n, h) ->
              [
                scope_label s; n;
                string_of_int (Histogram.count h);
                Printf.sprintf "%.0f" (Histogram.mean h);
                Printf.sprintf "%.0f" (Histogram.quantile h 50.);
                Printf.sprintf "%.0f" (Histogram.quantile h 95.);
                Printf.sprintf "%.0f" (Histogram.quantile h 99.);
                string_of_int (Histogram.max_value h);
              ])
            hs));
    Buffer.add_char b '\n'
  end;
  Buffer.contents b
