(** Causal trace context.

    A [ctx] names one node of a request's span tree: the trace it
    belongs to, its own span id, and its parent's span id.  Contexts
    are allocated per workload request (e.g. one RESP command) and
    propagated across trust boundaries — workload -> virtio queue ->
    hypervisor run loop -> Secure Monitor ecall handlers -> migration
    protocol messages — so that every event a request causes carries
    the same [trace_id] and the Chrome-trace export renders one
    connected tree per request.

    Ids come from a deterministic global counter: same build, same
    run, same ids.  There is no randomness and no wall clock here. *)

type ctx = { trace_id : int; span_id : int; parent_id : int }

val none : ctx
(** The absent context: all-zero.  Events recorded under [none] carry
    no trace annotation. *)

val is_none : ctx -> bool

val root : unit -> ctx
(** Allocate a fresh trace: new [trace_id], new [span_id], no parent. *)

val child : ctx -> ctx
(** Allocate a child span in the same trace: fresh [span_id],
    [parent_id] set to the parent's [span_id].  [child none] is a
    fresh root. *)

val to_args : ctx -> (string * string) list
(** The annotation stamped onto trace events:
    [["trace", ...; "span", ...; "parent", ...]], or [[]] for
    [none]. *)

val to_string : ctx -> string
(** Wire form ["trace:span:parent"] in decimal, ["-"] for [none]. *)

val of_string : string -> ctx option
(** Total inverse of [to_string]; [None] on malformed input. *)

val reset : unit -> unit
(** Reset the id counter (test isolation only). *)
