type region = { r_cvm : int; r_lo : int64; r_hi : int64; r_name : string }

type t = {
  ival : int;
  countdown : int array; (* per hart, retired instrs until next sample *)
  context : int array; (* per hart, owning CVM id (-1 = host) *)
  hits : (int * int64, int ref) Hashtbl.t; (* (cvm, page) -> count *)
  (* Last-bucket memo per hart: loops sample the same (cvm, page) over
     and over, and the tuple key + polymorphic hash would otherwise
     allocate on every expiry. *)
  last_cvm : int array;
  last_page : int64 array; (* Int64.min_int = empty (never a page base) *)
  last_count : int ref array;
  mutable regions : region list;
  mutable total : int;
}

let create ?(interval = 64) ~nharts () =
  if interval <= 0 then invalid_arg "Profile.create: non-positive interval";
  if nharts <= 0 then invalid_arg "Profile.create: non-positive nharts";
  {
    ival = interval;
    countdown = Array.make nharts interval;
    context = Array.make nharts (-1);
    hits = Hashtbl.create 64;
    last_cvm = Array.make nharts (-1);
    last_page = Array.make nharts Int64.min_int;
    last_count = Array.init nharts (fun _ -> ref 0);
    regions = [];
    total = 0;
  }

let interval t = t.ival

let page_of pc = Int64.logand pc (Int64.lognot 0xFFFL)

(* The non-expiry path — decrement, compare, store — runs once per
   retired instruction and must not allocate.  The expiry path first
   tries the per-hart last-bucket memo (an int compare, an Int64
   compare and an incr); the tuple key and hashtable only get touched
   when the sampled page actually changes. *)
let sample t ~hart ~pc =
  if hart >= 0 && hart < Array.length t.countdown then begin
    let c = t.countdown.(hart) - 1 in
    if c > 0 then t.countdown.(hart) <- c
    else begin
      t.countdown.(hart) <- t.ival;
      let cvm = t.context.(hart) in
      let page = page_of pc in
      if cvm = t.last_cvm.(hart) && Int64.equal page t.last_page.(hart) then
        incr t.last_count.(hart)
      else begin
        let r =
          let key = (cvm, page) in
          match Hashtbl.find_opt t.hits key with
          | Some r -> r
          | None ->
              let r = ref 0 in
              Hashtbl.add t.hits key r;
              r
        in
        incr r;
        t.last_cvm.(hart) <- cvm;
        t.last_page.(hart) <- page;
        t.last_count.(hart) <- r
      end;
      t.total <- t.total + 1
    end
  end

let set_context t ~hart ~cvm =
  if hart >= 0 && hart < Array.length t.context then t.context.(hart) <- cvm

let add_region t ~cvm ~lo ~hi name =
  t.regions <- { r_cvm = cvm; r_lo = lo; r_hi = hi; r_name = name } :: t.regions

let region_of t ~cvm page =
  List.find_map
    (fun r ->
      if r.r_cvm = cvm && page >= r.r_lo && page < r.r_hi then Some r.r_name
      else None)
    t.regions

let samples t = t.total

let buckets t =
  let rows =
    Hashtbl.fold
      (fun (cvm, page) n acc -> (cvm, page, region_of t ~cvm page, !n) :: acc)
      t.hits []
  in
  (* Descending hits, then (cvm, page) for a deterministic order. *)
  List.sort
    (fun (c1, p1, _, n1) (c2, p2, _, n2) ->
      if n1 <> n2 then compare n2 n1 else compare (c1, p1) (c2, p2))
    rows

let top_pages ?(k = 10) t =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k (buckets t)

let tenant_label cvm =
  if cvm < 0 then "host" else Printf.sprintf "cvm-%d" cvm

let folded t =
  let b = Buffer.create 1024 in
  List.iter
    (fun (cvm, page, region, n) ->
      Buffer.add_string b (tenant_label cvm);
      (match region with
      | Some r ->
          Buffer.add_char b ';';
          Buffer.add_string b r
      | None -> ());
      Buffer.add_string b (Printf.sprintf ";page-0x%Lx %d\n" page n))
    (buckets t);
  Buffer.contents b

let pp fmt t =
  Format.fprintf fmt "profile: %d samples, interval %d@." t.total t.ival;
  List.iter
    (fun (cvm, page, region, n) ->
      Format.fprintf fmt "  %-8s page 0x%-10Lx %-16s %6d (%.1f%%)@."
        (tenant_label cvm) page
        (match region with Some r -> r | None -> "-")
        n
        (100. *. float_of_int n /. float_of_int (max 1 t.total)))
    (top_pages ~k:10 t)

let reset t =
  Hashtbl.reset t.hits;
  Array.fill t.countdown 0 (Array.length t.countdown) t.ival;
  t.total <- 0
