(** Guest PC-sampling profiler.

    Samples the simulated program counter every [interval] retired
    instructions per hart, bucketing hits by (owning CVM, 4 KiB code
    page). The sampler lives on the interpreter's hot path behind a
    single branch (like [Trace.is_enabled]): the common non-sample
    path is a decrement, a compare and a store — no allocation.

    Sampling happens on the Secure-Monitor side of the trust
    boundary: the SM can observe guest PCs, and deployments must
    disclose that (see DESIGN.md threat-model notes). Buckets are
    keyed by the CVM id installed with {!set_context} — hits while no
    CVM context is installed are attributed to the host ([cvm = -1]).

    Output: a top-K hot-pages table and folded-stack lines
    ("cvm-1;page-0x12000 42") consumable by standard flamegraph
    tooling. Optional {!add_region} annotations name code regions so
    folded output reads "cvm-1;resp_loop;page-0x12000 42". *)

type t

val create : ?interval:int -> nharts:int -> unit -> t
(** [interval] defaults to 64 retired instructions per sample and
    must be positive. *)

val interval : t -> int

val sample : t -> hart:int -> pc:int64 -> unit
(** Hot-path hook: called once per retired instruction by the
    interpreter. Counts down; on expiry records one hit for [pc]'s
    page under the hart's current CVM context. *)

val set_context : t -> hart:int -> cvm:int -> unit
(** Attribute subsequent samples on [hart] to [cvm] ([-1] = host).
    Called at world-switch entry/exit. Allocation-free. *)

val add_region : t -> cvm:int -> lo:int64 -> hi:int64 -> string -> unit
(** Name the guest-physical code region [lo, hi) (page-granular) for
    [cvm]; folded output and the hot-pages table annotate pages
    falling inside it. *)

val samples : t -> int
(** Total hits recorded. *)

val top_pages : ?k:int -> t -> (int * int64 * string option * int) list
(** [(cvm, page_base, region_name, hits)] sorted by descending hits,
    at most [k] (default 10) rows. *)

val folded : t -> string
(** Folded-stack lines, one per bucket, sorted by descending hits:
    ["host;page-0x80000 7"] / ["cvm-1;resp_loop;page-0x12000 42"]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable hot-pages table. *)

val reset : t -> unit
(** Zero all buckets and per-hart countdowns; keeps interval,
    contexts and regions. *)
