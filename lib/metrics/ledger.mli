(** Cycle ledger — the simulator's clock and cost accounting.

    Every architectural component (trap logic, PMP reconfiguration, page
    walks, instruction execution, workload op streams) charges cycles to a
    ledger. A ledger tracks the global cycle counter plus per-category
    totals so experiments can attribute where time went. Marks allow
    measuring deltas (e.g. one world switch) without resetting. *)

type t

val create : unit -> t

val now : t -> int
(** Current cycle count since creation (or last [reset]). *)

val charge : t -> string -> int -> unit
(** [charge t category cycles] advances the clock by [cycles] and adds
    them to [category]'s total. [cycles] must be non-negative. *)

val advance : t -> int -> unit
(** Advance the clock without attributing a category (bulk compute). *)

val category_total : t -> string -> int
(** Cycles charged to a category so far; [0] for unknown categories. *)

val categories : t -> (string * int) list
(** All categories with their totals, sorted by descending total. *)

val mark : t -> int
(** Snapshot the clock; use with [since]. *)

val since : t -> int -> int
(** [since t m] is [now t - m]. *)

type snapshot
(** The clock plus every category total at one instant — a full-ledger
    generalisation of [mark] that lets experiments attribute a single
    operation's cycles per category instead of only cumulative totals. *)

val snapshot : t -> snapshot

val diff : earlier:snapshot -> later:snapshot -> snapshot
(** Per-category deltas between two snapshots of the same ledger:
    the clock delta plus every category whose total changed, sorted by
    descending delta. *)

val snapshot_clock : snapshot -> int
val snapshot_totals : snapshot -> (string * int) list

val reset : t -> unit
(** Zero the clock and all category totals. *)

type counter
(** Pre-resolved handle for one category, for paths that charge the
    same category every instruction. *)

val counter : t -> string -> counter
(** [counter t name] — a handle such that [tick] is observably
    identical to [charge t name] but skips the per-call string hash.
    Creating the handle does {e not} create the category; it appears
    only once ticked, exactly as with [charge]. Handles survive
    [reset] (they re-resolve lazily). *)

val tick : counter -> int -> unit
