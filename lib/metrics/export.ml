type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let num_of_int i = Num (float_of_int i)

(* ---------- serialization ---------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let json_to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   (match int_of_string_opt ("0x" ^ hex) with
                   | Some cp -> add_utf8 b cp
                   | None -> fail "bad \\u escape");
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); pairs ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (pairs [])
        end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at %d: %s" p msg)

(* ---------- registry -> JSON ---------- *)

let scope_fields = function
  | Registry.Global -> [ ("scope", Str "global") ]
  | Registry.Cvm id -> [ ("scope", Str "cvm"); ("cvm", num_of_int id) ]

let registry_to_json ?(extra = []) reg =
  let counters =
    List.map
      (fun (s, name, v) ->
        Obj (scope_fields s @ [ ("name", Str name); ("value", num_of_int v) ]))
      (Registry.counters reg)
  in
  let histograms =
    List.map
      (fun (s, name, h) ->
        Obj
          (scope_fields s
          @ [
              ("name", Str name);
              ("count", num_of_int (Histogram.count h));
              ("sum", num_of_int (Histogram.sum h));
              ("mean", Num (Histogram.mean h));
              ("p50", Num (Histogram.quantile h 50.));
              ("p95", Num (Histogram.quantile h 95.));
              ("p99", Num (Histogram.quantile h 99.));
              ("min", num_of_int (Histogram.min_value h));
              ("max", num_of_int (Histogram.max_value h));
            ]))
      (Registry.histograms reg)
  in
  Obj
    ([ ("counters", List counters); ("histograms", List histograms) ] @ extra)

(* ---------- registry -> Prometheus text ---------- *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let scope_labels = function
  | Registry.Global -> [ ("scope", "global") ]
  | Registry.Cvm id -> [ ("cvm", string_of_int id) ]

let render_labels b labels =
  if labels <> [] then begin
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        escape_into b v;
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'
  end

let sample b name labels value =
  Buffer.add_string b name;
  render_labels b labels;
  Buffer.add_char b ' ';
  add_num b value;
  Buffer.add_char b '\n'

let registry_to_prometheus ?(namespace = "zion") reg =
  let b = Buffer.create 2048 in
  let pfx name = sanitize (namespace ^ "_" ^ name) in
  let seen_type = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem seen_type name) then begin
      Hashtbl.add seen_type name ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (s, name, v) ->
      let mname = pfx name ^ "_total" in
      type_line mname "counter";
      sample b mname (scope_labels s) (float_of_int v))
    (Registry.counters reg);
  List.iter
    (fun (s, name, h) ->
      let mname = pfx name in
      type_line mname "summary";
      let labels = scope_labels s in
      List.iter
        (fun (q, p) ->
          sample b mname (labels @ [ ("quantile", q) ]) (Histogram.quantile h p))
        [ ("0.5", 50.); ("0.95", 95.); ("0.99", 99.) ];
      sample b (mname ^ "_count") labels (float_of_int (Histogram.count h));
      sample b (mname ^ "_sum") labels (float_of_int (Histogram.sum h)))
    (Registry.histograms reg);
  Buffer.contents b

(* ---------- Prometheus text -> samples ---------- *)

let parse_prometheus text =
  let parse_line lineno line =
    (* name{k="v",...} value *)
    let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    let n = String.length line in
    let is_name_char c =
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
      | _ -> false
    in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do
      incr i
    done;
    if !i = 0 then fail "expected metric name"
    else begin
      let name = String.sub line 0 !i in
      let labels = ref [] in
      let ok = ref (Ok ()) in
      (if !i < n && line.[!i] = '{' then begin
         incr i;
         let rec labels_loop () =
           if !i >= n then ok := Error "unterminated label set"
           else if line.[!i] = '}' then incr i
           else begin
             let ls = !i in
             while !i < n && line.[!i] <> '=' do
               incr i
             done;
             if !i >= n then ok := Error "label without '='"
             else begin
               let k = String.sub line ls (!i - ls) in
               incr i;
               if !i >= n || line.[!i] <> '"' then
                 ok := Error "label value must be quoted"
               else begin
                 incr i;
                 let b = Buffer.create 8 in
                 let rec str () =
                   if !i >= n then ok := Error "unterminated label value"
                   else
                     match line.[!i] with
                     | '"' -> incr i
                     | '\\' when !i + 1 < n ->
                         Buffer.add_char b line.[!i + 1];
                         i := !i + 2;
                         str ()
                     | c ->
                         Buffer.add_char b c;
                         incr i;
                         str ()
                 in
                 str ();
                 if !ok = Ok () then begin
                   labels := (k, Buffer.contents b) :: !labels;
                   if !i < n && line.[!i] = ',' then begin
                     incr i;
                     labels_loop ()
                   end
                   else labels_loop ()
                 end
               end
             end
           end
         in
         labels_loop ()
       end);
      match !ok with
      | Error msg -> fail msg
      | Ok () -> (
          let rest = String.trim (String.sub line !i (n - !i)) in
          match float_of_string_opt rest with
          | Some v -> Ok (name, List.rev !labels, v)
          | None -> fail (Printf.sprintf "bad sample value %S" rest))
    end
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
        else begin
          match parse_line lineno trimmed with
          | Ok sample -> go (lineno + 1) (sample :: acc) rest
          | Error msg -> Error msg
        end
  in
  go 1 [] lines
