(* Log-linear binning: values below [sub_count] get exact unit buckets;
   above that, each power-of-two octave is split into [sub_count]
   equal-width sub-buckets, so bucket width / bucket value <= 1/32. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let nbuckets = (63 - sub_bits + 1) * sub_count

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; total = 0; min_v = 0; max_v = 0 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.total <- 0;
  t.min_v <- 0;
  t.max_v <- 0

(* Position of the most significant set bit (v > 0). *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then (r := !r + 32; v := !v lsr 32);
  if !v lsr 16 <> 0 then (r := !r + 16; v := !v lsr 16);
  if !v lsr 8 <> 0 then (r := !r + 8; v := !v lsr 8);
  if !v lsr 4 <> 0 then (r := !r + 4; v := !v lsr 4);
  if !v lsr 2 <> 0 then (r := !r + 2; v := !v lsr 2);
  if !v lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of v =
  if v < sub_count then v
  else begin
    let m = msb v in
    let octave = m - sub_bits + 1 in
    let sub = (v lsr (m - sub_bits)) - sub_count in
    (octave * sub_count) + sub
  end

(* Inclusive value range covered by bucket [i]. *)
let bucket_bounds i =
  if i < sub_count then (i, i)
  else begin
    let octave = i / sub_count and sub = i mod sub_count in
    let width = 1 lsl (octave - 1) in
    let low = (sub_count + sub) * width in
    (low, low + width - 1)
  end

let observe t v =
  let v = max 0 v in
  let i = bucket_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + v;
  if t.n = 0 then begin
    t.min_v <- v;
    t.max_v <- v
  end
  else begin
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end;
  t.n <- t.n + 1

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0. else float_of_int t.total /. float_of_int t.n
let min_value t = t.min_v
let max_value t = t.max_v
let max_rel_error = 1. /. 64.

(* Estimated value of the k-th smallest sample (0-based): midpoint of
   the bucket holding rank [k], clamped to the exact [min;max]. *)
let value_at_rank t k =
  let rec find i seen =
    let seen = seen + t.counts.(i) in
    if seen > k then i else find (i + 1) seen
  in
  let i = find 0 0 in
  let lo, hi = bucket_bounds i in
  let mid = float_of_int (lo + hi) /. 2. in
  Float.min (float_of_int t.max_v) (Float.max (float_of_int t.min_v) mid)

let quantile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.quantile: p out of range";
  if t.n = 0 then 0.
  else begin
    (* Same rank convention as Stats.percentile: position p/100*(n-1)
       among the sorted samples, interpolating linearly between the
       two samples the fractional rank falls between.  Rounding the
       rank to the nearest integer (the previous behaviour) biased
       boundary quantiles — e.g. p50 of [0;1] answered 1 instead of
       0.5, and p999 on small n collapsed onto max one sample too
       early. *)
    let rank = p /. 100. *. float_of_int (t.n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then value_at_rank t lo
    else begin
      let frac = rank -. float_of_int lo in
      (value_at_rank t lo *. (1. -. frac)) +. (value_at_rank t hi *. frac)
    end
  end

let pp fmt t =
  Format.fprintf fmt
    "n=%d mean=%.0f p50=%.0f p95=%.0f p99=%.0f max=%d" t.n (mean t)
    (quantile t 50.) (quantile t 95.) (quantile t 99.) t.max_v
