(** Registry of named counters and histograms, scoped per CVM.

    The aggregation companion of {!Trace}: where the trace keeps the
    last N events, the registry keeps running totals and latency
    distributions for the whole run. Metrics are addressed by a name
    plus a {!scope} — [Global] for platform-wide facts (PMP flips, TLB
    flushes, ecall counts) and [Cvm id] for per-tenant attribution
    (entries, exits, fault stages, switch-cycle histograms). *)

type scope = Global | Cvm of int

type t

val create : unit -> t

val inc : ?scope:scope -> ?by:int -> t -> string -> unit
(** Bump a counter, creating it at zero first if needed. [by] defaults
    to 1 and may be any sign. [scope] defaults to [Global]. *)

val counter : ?scope:scope -> t -> string -> int
(** Current counter value; [0] for unknown names. *)

val observe : ?scope:scope -> t -> string -> int -> unit
(** Record a sample into a named {!Histogram}, creating it if needed. *)

val histogram : ?scope:scope -> t -> string -> Histogram.t option

val counters : t -> (scope * string * int) list
(** All counters, Global first then by CVM id, names sorted. *)

val histograms : t -> (scope * string * Histogram.t) list

val clear : t -> unit

val dump : t -> string
(** Rendered tables of every counter and histogram, for
    [zionctl stats] and the bench harness. Empty string when the
    registry recorded nothing. *)
