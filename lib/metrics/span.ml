type ctx = { trace_id : int; span_id : int; parent_id : int }

let none = { trace_id = 0; span_id = 0; parent_id = 0 }
let is_none c = c.trace_id = 0 && c.span_id = 0 && c.parent_id = 0

(* One deterministic counter feeds both trace and span ids; a fresh
   root burns two.  Starting at 1 keeps 0 meaning "absent". *)
let counter = ref 0

let next () =
  incr counter;
  !counter

let root () =
  let trace_id = next () in
  { trace_id; span_id = next (); parent_id = 0 }

let child parent =
  if is_none parent then root ()
  else
    {
      trace_id = parent.trace_id;
      span_id = next ();
      parent_id = parent.span_id;
    }

let to_args c =
  if is_none c then []
  else
    [
      ("trace", string_of_int c.trace_id);
      ("span", string_of_int c.span_id);
      ("parent", string_of_int c.parent_id);
    ]

let to_string c =
  if is_none c then "-"
  else Printf.sprintf "%d:%d:%d" c.trace_id c.span_id c.parent_id

let of_string s =
  if s = "-" then Some none
  else
    match String.split_on_char ':' s with
    | [ a; b; c ] -> (
        match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
        | Some trace_id, Some span_id, Some parent_id
          when trace_id >= 0 && span_id >= 0 && parent_id >= 0 ->
            Some { trace_id; span_id; parent_id }
        | _ -> None)
    | _ -> None

let reset () = counter := 0
