(** An in-memory key-value store speaking RESP — the Redis stand-in for
    the Figure 3 benchmark.

    Supports the operations redis-benchmark exercises: PING, SET, GET,
    INCR, LPUSH, RPUSH, LPOP, RPOP, SADD, SPOP, plus MSET, DEL, EXISTS,
    LRANGE, DBSIZE and FLUSHALL. [handle] processes one RESP-encoded
    request and returns the RESP-encoded reply; the per-request
    instruction mix (parse + execute + encode) is accumulated into the
    server's [Opcount] for the cycle model. *)

type t

val create : unit -> t

val handle : t -> string -> string
(** Process one RESP request; malformed input yields a RESP error
    reply, never an exception. *)

val handle_traced : ?trace:Metrics.Trace.t -> t -> string -> string
(** Like {!handle}, but when a trace is supplied and enabled each
    request allocates a fresh root span context, installs it on the
    trace ({!Metrics.Trace.set_ctx}) and wraps the work in a
    ["resp.request"] span carrying [op]/[bytes] args. The context is
    deliberately left installed after returning: the virtio
    completion and the world-switch events caused by this request are
    stamped with it until the next request's root replaces it. With no
    trace (or a disabled one) this is exactly [handle]. *)

val exec : t -> string list -> Resp.value
(** Execute a parsed command directly (used by unit tests). *)

val ops : t -> Opcount.t
(** Cumulative instruction mix of all requests handled. *)

val reset_ops : t -> unit

val dbsize : t -> int

val locality : Opcount.locality
(** Hot working set of the server loop (small: dispatch + hashtable
    spine). *)

val benchmark_ops : string list
(** The operation names Figure 3 plots: PING, SET, GET, INCR, LPUSH,
    RPUSH, LPOP, RPOP, SADD. *)

val request_for : t -> op:string -> key_space:int -> seq:int -> string
(** Build the [seq]-th RESP request of a redis-benchmark-style run for
    one operation type (keys cycle through [key_space] values, payloads
    are 3-byte values like the default redis-benchmark -d 3). *)
