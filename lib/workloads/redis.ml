let mix = Rv8_kernels.mix

type entry =
  | Str of string
  | List of string list * string list  (* front, reversed back *)
  | Set of (string, unit) Hashtbl.t

type t = { table : (string, entry) Hashtbl.t; ops : Opcount.t }

let create () = { table = Hashtbl.create 1024; ops = Opcount.zero () }
let ops t = t.ops
let reset_ops t =
  let z = Opcount.zero () in
  t.ops.Opcount.alu <- z.Opcount.alu;
  t.ops.Opcount.mul <- 0;
  t.ops.Opcount.div <- 0;
  t.ops.Opcount.load <- 0;
  t.ops.Opcount.store <- 0;
  t.ops.Opcount.branch <- 0;
  t.ops.Opcount.jump <- 0;
  t.ops.Opcount.alu <- 0

let dbsize t = Hashtbl.length t.table

let locality = { Opcount.hot_pages = 12; hot_dlines = 64; hot_ilines = 48 }

(* Per-request instruction-mix building blocks. *)
let parse_mix_per_byte = mix ~alu:3 ~load:2 ~branch:2 ()
let dispatch_mix = mix ~alu:30 ~load:12 ~branch:10 ~jump:4 ()
let hash_lookup_mix = mix ~alu:40 ~load:18 ~branch:8 ()
let hash_insert_mix = mix ~alu:50 ~load:20 ~store:12 ~branch:8 ()
let list_op_mix = mix ~alu:20 ~load:8 ~store:6 ~branch:4 ()
let encode_mix_per_byte = mix ~alu:2 ~store:1 ~branch:1 ()
let int_parse_mix = mix ~alu:12 ~load:4 ~branch:4 ()

let charge_bytes t per n = Opcount.add_scaled t.ops per (max n 1)

let wrong_type = Resp.Error "WRONGTYPE Operation against a key holding the wrong kind of value"
let ok = Resp.Simple "OK"

let get_list t key =
  match Hashtbl.find_opt t.table key with
  | Some (List (f, b)) -> Ok (f, b)
  | Some _ -> Stdlib.Error wrong_type
  | None -> Ok ([], [])

let get_set t key =
  match Hashtbl.find_opt t.table key with
  | Some (Set s) -> Ok s
  | Some _ -> Stdlib.Error wrong_type
  | None ->
      let s = Hashtbl.create 8 in
      Hashtbl.replace t.table key (Set s);
      Ok s

let list_len (f, b) = List.length f + List.length b

let exec t args =
  Opcount.add t.ops dispatch_mix;
  match List.map String.uppercase_ascii (match args with c :: _ -> [ c ] | [] -> []) , args with
  | [ "PING" ], _ -> Resp.Simple "PONG"
  | [ "SET" ], [ _; key; value ] ->
      Opcount.add t.ops hash_insert_mix;
      charge_bytes t encode_mix_per_byte (String.length value);
      Hashtbl.replace t.table key (Str value);
      ok
  | [ "GET" ], [ _; key ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      match Hashtbl.find_opt t.table key with
      | Some (Str v) ->
          charge_bytes t encode_mix_per_byte (String.length v);
          Resp.Bulk (Some v)
      | Some _ -> wrong_type
      | None -> Resp.Bulk None
    end
  | [ "INCR" ], [ _; key ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      Opcount.add t.ops int_parse_mix;
      match Hashtbl.find_opt t.table key with
      | None ->
          Hashtbl.replace t.table key (Str "1");
          Resp.Integer 1L
      | Some (Str v) -> begin
          match Int64.of_string_opt v with
          | Some i ->
              let i = Int64.add i 1L in
              Hashtbl.replace t.table key (Str (Int64.to_string i));
              Resp.Integer i
          | None -> Resp.Error "ERR value is not an integer or out of range"
        end
      | Some _ -> wrong_type
    end
  | [ "LPUSH" ], _ :: key :: values when values <> [] -> begin
      Opcount.add t.ops hash_lookup_mix;
      Opcount.add_scaled t.ops list_op_mix (List.length values);
      match get_list t key with
      | Stdlib.Error e -> e
      | Ok (f, b) ->
          let f = List.rev_append values f in
          Hashtbl.replace t.table key (List (f, b));
          Resp.Integer (Int64.of_int (list_len (f, b)))
    end
  | [ "RPUSH" ], _ :: key :: values when values <> [] -> begin
      Opcount.add t.ops hash_lookup_mix;
      Opcount.add_scaled t.ops list_op_mix (List.length values);
      match get_list t key with
      | Stdlib.Error e -> e
      | Ok (f, b) ->
          let b = List.rev_append values b in
          Hashtbl.replace t.table key (List (f, b));
          Resp.Integer (Int64.of_int (list_len (f, b)))
    end
  | [ "LPOP" ], [ _; key ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      Opcount.add t.ops list_op_mix;
      match get_list t key with
      | Stdlib.Error e -> e
      | Ok ([], []) -> Resp.Bulk None
      | Ok ([], b) -> begin
          match List.rev b with
          | x :: f ->
              Hashtbl.replace t.table key (List (f, []));
              Resp.Bulk (Some x)
          | [] -> Resp.Bulk None
        end
      | Ok (x :: f, b) ->
          Hashtbl.replace t.table key (List (f, b));
          Resp.Bulk (Some x)
    end
  | [ "RPOP" ], [ _; key ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      Opcount.add t.ops list_op_mix;
      match get_list t key with
      | Stdlib.Error e -> e
      | Ok ([], []) -> Resp.Bulk None
      | Ok (f, x :: b) ->
          Hashtbl.replace t.table key (List (f, b));
          Resp.Bulk (Some x)
      | Ok (f, []) -> begin
          match List.rev f with
          | x :: rest ->
              Hashtbl.replace t.table key (List ([], rest));
              Resp.Bulk (Some x)
          | [] -> Resp.Bulk None
        end
    end
  | [ "SADD" ], _ :: key :: members when members <> [] -> begin
      Opcount.add t.ops hash_lookup_mix;
      match get_set t key with
      | Stdlib.Error e -> e
      | Ok s ->
          let added = ref 0 in
          List.iter
            (fun m ->
              Opcount.add t.ops hash_insert_mix;
              if not (Hashtbl.mem s m) then begin
                Hashtbl.replace s m ();
                incr added
              end)
            members;
          Resp.Integer (Int64.of_int !added)
    end
  | [ "SPOP" ], [ _; key ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      match Hashtbl.find_opt t.table key with
      | Some (Set s) -> begin
          let victim = Hashtbl.fold (fun k () _ -> Some k) s None in
          match victim with
          | Some m ->
              Opcount.add t.ops hash_insert_mix;
              Hashtbl.remove s m;
              Resp.Bulk (Some m)
          | None -> Resp.Bulk None
        end
      | Some _ -> wrong_type
      | None -> Resp.Bulk None
    end
  | [ "MSET" ], _ :: kvs when List.length kvs mod 2 = 0 && kvs <> [] ->
      let rec go = function
        | k :: v :: rest ->
            Opcount.add t.ops hash_insert_mix;
            Hashtbl.replace t.table k (Str v);
            go rest
        | _ -> ()
      in
      go kvs;
      ok
  | [ "DEL" ], _ :: keys when keys <> [] ->
      let n = ref 0 in
      List.iter
        (fun k ->
          Opcount.add t.ops hash_lookup_mix;
          if Hashtbl.mem t.table k then begin
            Hashtbl.remove t.table k;
            incr n
          end)
        keys;
      Resp.Integer (Int64.of_int !n)
  | [ "EXISTS" ], [ _; key ] ->
      Opcount.add t.ops hash_lookup_mix;
      Resp.Integer (if Hashtbl.mem t.table key then 1L else 0L)
  | [ "LRANGE" ], [ _; key; start_s; stop_s ] -> begin
      Opcount.add t.ops hash_lookup_mix;
      match
        (get_list t key, int_of_string_opt start_s, int_of_string_opt stop_s)
      with
      | Stdlib.Error e, _, _ -> e
      | Ok _, None, _ | Ok _, _, None ->
          Resp.Error "ERR value is not an integer or out of range"
      | Ok (f, b), Some start, Some stop ->
          let all = f @ List.rev b in
          let n = List.length all in
          let norm i = if i < 0 then max 0 (n + i) else min i (n - 1) in
          let start = norm start and stop = norm stop in
          Opcount.add_scaled t.ops list_op_mix (max (stop - start + 1) 1);
          let items =
            List.filteri (fun i _ -> i >= start && i <= stop) all
          in
          Resp.Array (List.map (fun s -> Resp.Bulk (Some s)) items)
    end
  | [ "DBSIZE" ], [ _ ] -> Resp.Integer (Int64.of_int (Hashtbl.length t.table))
  | [ "FLUSHALL" ], [ _ ] ->
      Hashtbl.reset t.table;
      ok
  | [ cmd ], _ ->
      Resp.Error (Printf.sprintf "ERR wrong number of arguments for '%s'" cmd)
  | _, _ -> Resp.Error "ERR unknown command"

let handle t request =
  charge_bytes t parse_mix_per_byte (String.length request);
  let reply =
    match Resp.decode_command request with
    | Ok args when args <> [] -> exec t args
    | Ok _ -> Resp.Error "ERR empty command"
    | Stdlib.Error e -> Resp.Error ("ERR protocol error: " ^ e)
  in
  let encoded = Resp.encode reply in
  charge_bytes t encode_mix_per_byte (String.length encoded);
  encoded

let handle_traced ?trace t request =
  match trace with
  | Some tr when Metrics.Trace.is_enabled tr ->
      (* One root span context per request. It stays installed on the
         trace after we return, so the device completion and the next
         world-switch exit are stamped with the request that caused
         them; the next request's root replaces it. *)
      let ctx = Metrics.Span.root () in
      Metrics.Trace.set_ctx tr ctx;
      let op =
        match Resp.decode_command request with
        | Ok (c :: _) -> String.uppercase_ascii c
        | _ -> "?"
      in
      Metrics.Trace.span_begin tr
        ~args:[ ("op", op); ("bytes", string_of_int (String.length request)) ]
        "resp.request";
      let reply = handle t request in
      Metrics.Trace.span_end tr
        ~args:[ ("reply_bytes", string_of_int (String.length reply)) ]
        "resp.request";
      reply
  | _ -> handle t request

let benchmark_ops =
  [ "PING"; "SET"; "GET"; "INCR"; "LPUSH"; "RPUSH"; "LPOP"; "RPOP"; "SADD" ]

let request_for _t ~op ~key_space ~seq =
  let key = Printf.sprintf "key:%06d" (seq mod key_space) in
  let value = "xxx" (* redis-benchmark -d 3 default *) in
  let args =
    match op with
    | "PING" -> [ "PING" ]
    | "SET" -> [ "SET"; key; value ]
    | "GET" -> [ "GET"; key ]
    | "INCR" -> [ "INCR"; "counter:" ^ string_of_int (seq mod key_space) ]
    | "LPUSH" -> [ "LPUSH"; "mylist"; value ]
    | "RPUSH" -> [ "RPUSH"; "mylist"; value ]
    | "LPOP" -> [ "LPOP"; "mylist" ]
    | "RPOP" -> [ "RPOP"; "mylist" ]
    | "SADD" -> [ "SADD"; "myset"; "element:" ^ string_of_int seq ]
    | other -> [ other ]
  in
  Resp.encode_command args
