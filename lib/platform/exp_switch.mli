(** §V.B — CVM mode-switching experiments.

    Both experiments drive a real confidential VM on the simulated hart
    and read the per-switch cycle record out of the Secure Monitor.

    1. Shared-vCPU optimisation (§V.B.1): 200 MMIO-triggered entry/exit
       pairs with the shared vCPU enabled vs disabled.
    2. Short-path vs long-path (§V.B.2): 200 timer-triggered entry/exit
       pairs under ZION's single-hop switch vs the secure-hypervisor
       long path. *)

type switch_stats = {
  entry_mean : float;
  exit_mean : float;
  samples : int;
  attribution : (string * int) list;
      (** per-category cycle deltas over the measured run (a
          [Metrics.Ledger] snapshot diff), sorted by descending delta —
          where the switch cycles actually went *)
}

val mmio_program : iterations:int -> Riscv.Decode.t list
(** The MMIO-load guest used by [measure_mmio_switches], exported so the
    tracing front end can replay the same workload under a recorder. *)

val measure_mmio_switches : shared_vcpu:bool -> iterations:int -> switch_stats
(** MMIO-triggered switches under the given vCPU-transfer mechanism. *)

val measure_timer_switches : long_path:bool -> iterations:int -> switch_stats
(** Timer-triggered switches under the short or long path. *)

type tlb_counters = {
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_hit_rate : float;  (** hits / (hits + misses), 0 when idle *)
}

type mode_stats = { sw : switch_stats; tlb : tlb_counters }

val measure_retention_switches :
  tlb_retention:bool -> iterations:int -> mode_stats
(** Timer-triggered switches with the VMID-tagged retention fast path
    on or off, plus the harts' TLB counters over the measured loop
    (stats reset after setup). The retained mode should show the
    entry+exit pair cheaper by two [tlb_full_flush] charges and a
    near-1 hit rate once warm. *)

type report = {
  shared_on : switch_stats;
  shared_off : switch_stats;
  short_path : switch_stats;
  long_path : switch_stats;
}

val run : ?iterations:int -> unit -> report
(** Default 200 iterations, as in the paper. *)

val paper : (string * float) list
(** The paper's numbers for side-by-side printing. *)
