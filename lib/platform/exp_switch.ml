open Riscv

type switch_stats = {
  entry_mean : float;
  exit_mean : float;
  samples : int;
  attribution : (string * int) list;
}

let mean xs = Metrics.Stats.mean (Array.of_list (List.map float_of_int xs))

let attribution_of tb before =
  let after =
    Metrics.Ledger.snapshot tb.Testbed.machine.Machine.ledger
  in
  Metrics.Ledger.snapshot_totals
    (Metrics.Ledger.diff ~earlier:before ~later:after)

(* Guest that performs [n] MMIO loads from the virtio window. The loop
   body is fixed-size so the branch offset is static. *)
let mmio_load_loop n =
  let open Decode in
  Asm.li Asm.t0 Zion.Layout.virtio_mmio_gpa
  @ Asm.li Asm.t1 (Int64.of_int n)
  @ [
      (* loop: *)
      Load { rd = Asm.t2; rs1 = Asm.t0; imm = 0x10L; width = W;
             unsigned = false };
      Op_imm (Add, Asm.t1, Asm.t1, -1L);
      Branch (Bne, Asm.t1, 0, -8L);
    ]
  @ Guest.Gprog.shutdown

let mmio_program ~iterations = mmio_load_loop iterations

let measure_mmio_switches ~shared_vcpu ~iterations =
  let config = { Zion.Monitor.default_config with shared_vcpu } in
  let tb = Testbed.create ~config () in
  let handle = Testbed.cvm tb (mmio_load_loop iterations) in
  let before = Metrics.Ledger.snapshot tb.Testbed.machine.Machine.ledger in
  (match
     Hypervisor.Kvm.run_cvm tb.Testbed.kvm handle ~hart:0
       ~max_steps:10_000_000
   with
  | Hypervisor.Kvm.C_shutdown -> ()
  | other ->
      ignore other;
      failwith "exp_switch: MMIO guest did not shut down");
  (* Keep only the MMIO-flavoured switches: the first entry (cold) and
     the final exit (shutdown ecall) are plain and excluded. *)
  let entries = Zion.Monitor.entry_cycles tb.Testbed.monitor in
  let exits = Zion.Monitor.exit_cycles tb.Testbed.monitor in
  let plain_entry =
    Zion.Monitor.path_cost tb.Testbed.monitor Zion.Monitor.Entry_plain
  in
  let plain_exit =
    Zion.Monitor.path_cost tb.Testbed.monitor Zion.Monitor.Exit_plain
  in
  let mmio_entries = List.filter (fun c -> c <> plain_entry) entries in
  let mmio_exits = List.filter (fun c -> c <> plain_exit) exits in
  {
    entry_mean = mean mmio_entries;
    exit_mean = mean mmio_exits;
    samples = List.length mmio_exits;
    attribution = attribution_of tb before;
  }

let measure_timer_switches ~long_path ~iterations =
  let config = { Zion.Monitor.default_config with long_path } in
  let tb = Testbed.create ~config () in
  let handle = Testbed.cvm tb [ Decode.Jal (0, 0L) ] in
  let before = Metrics.Ledger.snapshot tb.Testbed.machine.Machine.ledger in
  Testbed.enable_timer tb ~hart:0;
  for _ = 1 to iterations do
    Testbed.set_quantum tb ~hart:0 20_000;
    match
      Hypervisor.Kvm.run_cvm tb.Testbed.kvm handle ~hart:0
        ~max_steps:10_000_000
    with
    | Hypervisor.Kvm.C_timer -> ()
    | _ -> failwith "exp_switch: expected timer exit"
  done;
  let entries = Zion.Monitor.entry_cycles tb.Testbed.monitor in
  let exits = Zion.Monitor.exit_cycles tb.Testbed.monitor in
  {
    entry_mean = mean entries;
    exit_mean = mean exits;
    samples = List.length exits;
    attribution = attribution_of tb before;
  }

type tlb_counters = {
  tlb_hits : int;
  tlb_misses : int;
  tlb_flushes : int;
  tlb_hit_rate : float;
}

type mode_stats = { sw : switch_stats; tlb : tlb_counters }

(* Steady-state timer switches under the chosen TLB mode. Stats are
   reset after setup (pool registration and image load do mandatory
   full flushes in either mode) so the counters describe the switch
   loop alone. *)
let measure_retention_switches ~tlb_retention ~iterations =
  let config = { Zion.Monitor.default_config with tlb_retention } in
  let tb = Testbed.create ~config () in
  let handle = Testbed.cvm tb [ Decode.Jal (0, 0L) ] in
  let harts = tb.Testbed.machine.Machine.harts in
  Array.iter (fun h -> Tlb.reset_stats h.Hart.tlb) harts;
  let before = Metrics.Ledger.snapshot tb.Testbed.machine.Machine.ledger in
  Testbed.enable_timer tb ~hart:0;
  for _ = 1 to iterations do
    Testbed.set_quantum tb ~hart:0 20_000;
    match
      Hypervisor.Kvm.run_cvm tb.Testbed.kvm handle ~hart:0
        ~max_steps:10_000_000
    with
    | Hypervisor.Kvm.C_timer -> ()
    | _ -> failwith "exp_switch: expected timer exit"
  done;
  let entries = Zion.Monitor.entry_cycles tb.Testbed.monitor in
  let exits = Zion.Monitor.exit_cycles tb.Testbed.monitor in
  let sum f = Array.fold_left (fun acc h -> acc + f h.Hart.tlb) 0 harts in
  let hits = sum Tlb.hits
  and misses = sum Tlb.misses
  and flushes = sum Tlb.flushes in
  let lookups = hits + misses in
  {
    sw =
      {
        entry_mean = mean entries;
        exit_mean = mean exits;
        samples = List.length exits;
        attribution = attribution_of tb before;
      };
    tlb =
      {
        tlb_hits = hits;
        tlb_misses = misses;
        tlb_flushes = flushes;
        tlb_hit_rate =
          (if lookups = 0 then 0.
           else float_of_int hits /. float_of_int lookups);
      };
  }

type report = {
  shared_on : switch_stats;
  shared_off : switch_stats;
  short_path : switch_stats;
  long_path : switch_stats;
}

let run ?(iterations = 200) () =
  {
    shared_on = measure_mmio_switches ~shared_vcpu:true ~iterations;
    shared_off = measure_mmio_switches ~shared_vcpu:false ~iterations;
    short_path = measure_timer_switches ~long_path:false ~iterations;
    long_path = measure_timer_switches ~long_path:true ~iterations;
  }

let paper =
  [
    ("entry shared-vCPU", 4191.);
    ("entry no-shared-vCPU", 5293.);
    ("exit shared-vCPU", 2524.);
    ("exit no-shared-vCPU", 3267.);
    ("entry short-path", 4028.);
    ("entry long-path", 7282.);
    ("exit short-path", 2406.);
    ("exit long-path", 5384.);
  ]
