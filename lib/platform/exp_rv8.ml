type row = {
  name : string;
  checksum : string;
  normal_gcycles : float;
  cvm_gcycles : float;
  overhead_pct : float;
  paper_overhead_pct : float;
}

let paper_table1 =
  [
    ("aes", 6.312, 2.95); ("bigint", 8.965, 2.73); ("dhrystone", 4.144, 2.90);
    ("miniz", 25.412, 1.92); ("norx", 3.905, 2.79); ("primes", 19.002, 1.81);
    ("qsort", 2.148, 2.65); ("sha512", 3.947, 2.93);
  ]

let paper_coremark = (2047.6, 1992.3)

(* Working sets are small and constant per kernel: demand paging is a
   one-time cost at this scale. *)
let startup_fault_pages = 256

let price_arms ~(monitor : Zion.Monitor.t) ~locality ~ops ~target_gcycles =
  let normal =
    Macro_vm.create ~kind:Macro_vm.Normal ~monitor ~locality ()
  in
  let cvm =
    Macro_vm.create ~kind:Macro_vm.Confidential ~monitor ~locality ()
  in
  (* Fix the replication factor so the normal arm reproduces Table I's
     baseline column, then apply the identical work to both arms. *)
  let cost = (Zion.Monitor.machine monitor).Riscv.Machine.cost in
  let w_small = float_of_int (Workloads.Opcount.cycles cost ops) in
  let target = target_gcycles *. 1e9 in
  (* invert the tick dilation of the normal arm *)
  let tick_n = float_of_int cost.Riscv.Cost.hs_timer_tick in
  let quantum = float_of_int Testbed.quantum_cycles in
  let work_needed = target *. (1. -. (tick_n /. quantum)) in
  let factor = work_needed /. w_small in
  let scaled = Workloads.Opcount.scale ops factor in
  Macro_vm.add_ops normal scaled;
  Macro_vm.add_ops cvm scaled;
  Macro_vm.add_faults normal ~pages:startup_fault_pages;
  Macro_vm.add_faults cvm ~pages:startup_fault_pages;
  (Macro_vm.total_cycles normal, Macro_vm.total_cycles cvm)

let run_table1 ?(scale = 1) () =
  let tb = Testbed.create () in
  let monitor = tb.Testbed.monitor in
  List.map
    (fun (r : Workloads.Rv8.result) ->
      let paper_overhead_pct =
        match
          List.find_opt (fun (n, _, _) -> n = r.Workloads.Rv8.name)
            paper_table1
        with
        | Some (_, _, p) -> p
        | None -> nan
      in
      let n_cycles, c_cycles =
        price_arms ~monitor ~locality:r.Workloads.Rv8.locality
          ~ops:r.Workloads.Rv8.ops
          ~target_gcycles:r.Workloads.Rv8.target_gcycles
      in
      {
        name = r.Workloads.Rv8.name;
        checksum = r.Workloads.Rv8.checksum;
        normal_gcycles = n_cycles /. 1e9;
        cvm_gcycles = c_cycles /. 1e9;
        overhead_pct =
          Metrics.Stats.pct_change ~baseline:n_cycles c_cycles;
        paper_overhead_pct;
      })
    (Workloads.Rv8.run_all ~scale)

let average_overhead rows =
  Metrics.Stats.mean
    (Array.of_list (List.map (fun r -> r.overhead_pct) rows))

type coremark = {
  crc_ok : bool;
  normal_score : float;
  cvm_score : float;
  drop_pct : float;
}

let run_coremark ?(iterations = 3) () =
  let tb = Testbed.create () in
  let monitor = tb.Testbed.monitor in
  let result = Workloads.Coremark.run ~iterations in
  let crc_ok = result.Workloads.Coremark.crc = Workloads.Coremark.reference_crc in
  (* CoreMark reports iterations/second over a multi-second run (the
     EEMBC rules demand >= 10 s). Replicate the measured mix up to a
     paper-equivalent run long enough that one-time effects vanish, with
     the normal arm pinned to the paper's score at 100 MHz. *)
  let clock_hz = 1e8 in
  let target_cycles_per_iter =
    clock_hz /. Workloads.Coremark.target_score_normal
  in
  let equivalent_iters = 60_000 (* ~30 s at the paper's score *) in
  let n_cycles, c_cycles =
    price_arms ~monitor ~locality:result.Workloads.Coremark.locality
      ~ops:result.Workloads.Coremark.ops
      ~target_gcycles:
        (target_cycles_per_iter *. float_of_int equivalent_iters /. 1e9)
  in
  let per_iter_n = n_cycles /. float_of_int equivalent_iters in
  let per_iter_c = c_cycles /. float_of_int equivalent_iters in
  let normal_score = clock_hz /. per_iter_n in
  let cvm_score = clock_hz /. per_iter_c in
  {
    crc_ok;
    normal_score;
    cvm_score;
    drop_pct = (normal_score -. cvm_score) /. normal_score *. 100.;
  }
