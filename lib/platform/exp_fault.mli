(** §V.C — stage-2 page-fault handling performance.

    Runs the paper's experiment for real: a guest program that touches a
    run of fresh pages, once in a normal VM (KVM handles each fault) and
    once in a confidential VM (the SM's three-stage allocator handles
    each fault). The stage-3 sample comes from a deliberately small pool
    that forces an expansion. *)

type report = {
  normal_mean : float;
  stage1_mean : float;
  stage2_mean : float;
  stage3_mean : float;
  cvm_weighted_mean : float;  (** over the CVM's actual stage mix *)
  stage1_count : int;
  stage2_count : int;
  stage3_count : int;
  normal_count : int;
  cvm_attribution : (string * int) list;
      (** per-category cycle deltas over the CVM arm (a [Metrics.Ledger]
          snapshot diff), sorted by descending delta *)
}

val run : ?pages:int -> unit -> report
(** Default 200 pages touched per VM (enough to exhaust the CVM arm's
    deliberately small pool and sample a stage-3 expansion). *)

val paper : (string * float) list
