type row = {
  op : string;
  normal_kqps : float;
  cvm_kqps : float;
  throughput_drop_pct : float;
  normal_latency_ms : float;
  cvm_latency_ms : float;
  latency_increase_pct : float;
}

(* Per-request constants (see the interface): calibrated once against
   the platform — a 100 MHz in-order core spends a few ms per
   networked request in the kernel. *)
let kernel_stack_cycles = 400_000
let client_overhead_cycles = 132_000
let mmio_accesses_per_request = 1.5

let clock_hz = 1e8

let run_one ?io_mode ~monitor ~rounds ~requests op =
  let run_arm kind =
    let server = Workloads.Redis.create () in
    let vm =
      Macro_vm.create ~kind ?io_mode ~monitor
        ~locality:Workloads.Redis.locality ()
    in
    let total_reqs = rounds * requests in
    let bytes_moved = ref 0 in
    for seq = 0 to total_reqs - 1 do
      let req =
        Workloads.Redis.request_for server ~op ~key_space:requests ~seq
      in
      let reply = Workloads.Redis.handle server req in
      bytes_moved := !bytes_moved + String.length req + String.length reply
    done;
    (* Server + guest-kernel work. *)
    Macro_vm.add_ops vm (Workloads.Redis.ops server);
    Macro_vm.add_cycles vm (kernel_stack_cycles * total_reqs);
    (* Virtio-net accesses with coalescing; bounce traffic is the RESP
       bytes in both directions. *)
    let accesses =
      int_of_float
        (Float.round (mmio_accesses_per_request *. float_of_int total_reqs))
    in
    let per_access_bytes = !bytes_moved / max accesses 1 in
    for _ = 1 to accesses do
      Macro_vm.add_net_access vm ~copied_bytes:per_access_bytes
    done;
    Macro_vm.add_faults vm ~pages:64;
    (Macro_vm.total_cycles vm, total_reqs)
  in
  let n_total, reqs = run_arm Macro_vm.Normal in
  let c_total, _ = run_arm Macro_vm.Confidential in
  let per_req_n = n_total /. float_of_int reqs in
  let per_req_c = c_total /. float_of_int reqs in
  let qps cycles_per_req = clock_hz /. cycles_per_req in
  let latency_ms per_req =
    (per_req +. float_of_int client_overhead_cycles) /. clock_hz *. 1000.
  in
  let n_lat = latency_ms per_req_n and c_lat = latency_ms per_req_c in
  {
    op;
    normal_kqps = qps per_req_n /. 1000.;
    cvm_kqps = qps per_req_c /. 1000.;
    throughput_drop_pct = (per_req_c -. per_req_n) /. per_req_c *. 100.;
    normal_latency_ms = n_lat;
    cvm_latency_ms = c_lat;
    latency_increase_pct = (c_lat -. n_lat) /. n_lat *. 100.;
  }

let run ?(rounds = 10) ?(requests = 10_000) ?io_mode () =
  let tb = Testbed.create () in
  List.map
    (run_one ?io_mode ~monitor:tb.Testbed.monitor ~rounds ~requests)
    Workloads.Redis.benchmark_ops

(* {2 Traced end-to-end run} *)

type traced_stats = {
  t_requests : int;
  t_completed : int;
  t_total_cycles : int;
  t_outcome : Hypervisor.Kvm.cvm_outcome;
}

let run_traced ?(ops = [ "SET"; "GET" ]) ?(requests = 10) ?(key_space = 4)
    ?profile_interval ?(quantum = Testbed.quantum_cycles)
    ?(max_slices = 400) ?on_slice () =
  if ops = [] then invalid_arg "Exp_redis.run_traced: empty op list";
  let tb = Testbed.create () in
  let mon = tb.Testbed.monitor in
  let tr = Zion.Monitor.trace mon in
  Metrics.Trace.enable tr;
  (match profile_interval with
  | Some interval -> Zion.Monitor.enable_profiler ~interval mon
  | None -> ());
  let server = Workloads.Redis.create () in
  let nops = List.length ops in
  let reqs =
    List.init requests (fun seq ->
        Workloads.Redis.request_for server ~op:(List.nth ops (seq mod nops))
          ~key_space ~seq)
  in
  (* One TX (request) + one RX fill (reply head) per request, fully
     unrolled: distinct requests land on distinct guest code pages,
     which is what gives the profiler a real hot-page distribution. *)
  let prog =
    List.concat_map
      (fun req -> Guest.Gprog.net_send req @ Guest.Gprog.net_recv_putchar)
      reqs
    @ Guest.Gprog.shutdown
  in
  let h = Testbed.cvm tb prog in
  let id = Hypervisor.Kvm.cvm_id h in
  (match Zion.Monitor.profiler mon with
  | Some p ->
      let lo = Testbed.guest_entry in
      let hi =
        Int64.add lo
          (Int64.of_int (String.length (Riscv.Asm.program prog)))
      in
      Metrics.Profile.add_region p ~cvm:id ~lo ~hi "guest.text"
  | None -> ());
  let ledger = tb.Testbed.machine.Riscv.Machine.ledger in
  let start = Metrics.Ledger.now ledger in
  let completed = ref 0 in
  let last_req = ref start in
  let net = Hypervisor.Mmio_emul.net (Hypervisor.Kvm.devices tb.Testbed.kvm) in
  Hypervisor.Virtio_net.set_peer net (fun pkt ->
      let now = Metrics.Ledger.now ledger in
      Metrics.Registry.observe ~scope:(Metrics.Registry.Cvm id)
        (Zion.Monitor.registry mon)
        "request_cycles" (now - !last_req);
      last_req := now;
      incr completed;
      Some (Workloads.Redis.handle_traced ~trace:tr server pkt));
  (* The slice loop of [Kvm.run_cvm_to_completion], opened up so a
     caller can watch the run live between quanta ([zionctl top]). *)
  Testbed.enable_timer tb ~hart:0;
  let rec go slice =
    if slice >= max_slices then Hypervisor.Kvm.C_limit
    else begin
      Testbed.set_quantum tb ~hart:0 quantum;
      match Hypervisor.Kvm.run_cvm tb.Testbed.kvm h ~hart:0
              ~max_steps:10_000_000
      with
      | Hypervisor.Kvm.C_timer ->
          (match on_slice with Some f -> f slice tb | None -> ());
          go (slice + 1)
      | other -> other
    end
  in
  let outcome = go 0 in
  (match profile_interval with
  | Some _ -> Zion.Monitor.disable_profiler mon
  | None -> ());
  Metrics.Trace.clear_ctx tr;
  ( tb,
    {
      t_requests = requests;
      t_completed = !completed;
      t_total_cycles = Metrics.Ledger.now ledger - start;
      t_outcome = outcome;
    } )

let average_throughput_drop rows =
  Metrics.Stats.mean
    (Array.of_list (List.map (fun r -> r.throughput_drop_pct) rows))

let average_latency_increase rows =
  Metrics.Stats.mean
    (Array.of_list (List.map (fun r -> r.latency_increase_pct) rows))

let paper_avgs = (5.3, 4.0)
