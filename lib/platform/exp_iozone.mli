(** Figure 4 — IOZone sequential read/write throughput across file sizes
    (64 KiB – 512 MiB) and record sizes (8/128/512 KiB), normal vs
    confidential VM.

    The workload model performs the record processing for real and
    emits the device-request stream after guest page-cache batching;
    the event model prices each request's MMIO accesses, device service
    time and, for the confidential arm, the SWIOTLB bounce copy. *)

type point = {
  op : Workloads.Iozone.op;
  file_kb : int;
  record_kb : int;
  normal_mb_s : float;
  cvm_mb_s : float;
  overhead_pct : float;
}

val run : ?io_mode:Macro_vm.io_mode -> unit -> point list
(** The full Figure 4 grid: 2 ops × 8 file sizes × 3 record sizes.
    [io_mode] selects the confidential arm's device path: the default
    [Exitful] MMIO kicks, or the [Exitless] shared-memory ring (the
    normal arm always uses the HS MMIO path). *)

val max_overhead : point list -> float
val small_file_max_overhead : point list -> float
(** Maximum overhead among files of at most 16 MiB (the paper: "for
    smaller files, the performance difference is minimal"). *)
