type point = {
  op : Workloads.Iozone.op;
  file_kb : int;
  record_kb : int;
  normal_mb_s : float;
  cvm_mb_s : float;
  overhead_pct : float;
}

let clock_hz = 1e8

let price ?io_mode ~monitor kind (run : Workloads.Iozone.run) =
  let vm =
    Macro_vm.create ~kind ?io_mode ~monitor
      ~locality:Workloads.Iozone.locality ()
  in
  Macro_vm.add_ops vm run.Workloads.Iozone.ops;
  List.iter
    (fun (Workloads.Iozone.Io_request { bytes }) ->
      Macro_vm.add_blk_request vm ~bytes)
    run.Workloads.Iozone.events;
  (* Steady-state I/O: IOZone's measured passes run against a warm page
     cache whose pages faulted in long before, so demand paging is not
     part of the measurement window (in either arm). *)
  Macro_vm.total_cycles vm

let run ?io_mode () =
  let tb = Testbed.create () in
  let monitor = tb.Testbed.monitor in
  List.concat_map
    (fun op ->
      List.concat_map
        (fun file_kb ->
          List.map
            (fun record_kb ->
              let r = Workloads.Iozone.run ~op ~file_kb ~record_kb in
              let n = price ~monitor Macro_vm.Normal r in
              let c = price ?io_mode ~monitor Macro_vm.Confidential r in
              let mb_s cycles =
                float_of_int file_kb /. 1024. /. (cycles /. clock_hz)
              in
              {
                op;
                file_kb;
                record_kb;
                normal_mb_s = mb_s n;
                cvm_mb_s = mb_s c;
                overhead_pct = (c -. n) /. n *. 100.;
              })
            Workloads.Iozone.record_sizes_kb)
        Workloads.Iozone.file_sizes_kb)
    [ Workloads.Iozone.Write; Workloads.Iozone.Read ]

let max_overhead points =
  List.fold_left (fun acc p -> max acc p.overhead_pct) 0. points

let small_file_max_overhead points =
  List.fold_left
    (fun acc p ->
      if p.file_kb <= 16384 then max acc p.overhead_pct else acc)
    0. points
