type kind = Normal | Confidential
type io_mode = Exitful | Exitless

type t = {
  kind : kind;
  io_mode : io_mode;
  monitor : Zion.Monitor.t;
  cost : Riscv.Cost.t;
  locality : Workloads.Opcount.locality;
  mutable work : float;  (** computation cycles *)
  mutable fault : float;
  mutable io : float;
  mutable refill : float;  (** post-switch TLB/cache refill (CVM) *)
}

let quantum = float_of_int Testbed.quantum_cycles
let exitless_batch = 8

let create ~kind ?(io_mode = Exitful) ~monitor ~locality () =
  {
    kind;
    io_mode;
    monitor;
    cost = (Zion.Monitor.machine monitor).Riscv.Machine.cost;
    locality;
    work = 0.;
    fault = 0.;
    io = 0.;
    refill = 0.;
  }

let add_ops t ops =
  t.work <- t.work +. float_of_int (Workloads.Opcount.cycles t.cost ops)

let add_cycles t c = t.work <- t.work +. float_of_int c

(* KVM's normal-VM fault path costs a fixed 39,607 cycles; ZION's
   hierarchical allocator serves from the vCPU page cache except when a
   fresh 64-page block must be grabbed. *)
let add_faults t ~pages =
  if pages > 0 then begin
    let c = t.cost in
    match t.kind with
    | Normal ->
        (* same composition as Hypervisor.Kvm.kvm_fault_cost *)
        let kvm =
          c.Riscv.Cost.trap_entry + c.Riscv.Cost.kvm_save
          + c.Riscv.Cost.kvm_dispatch + c.Riscv.Cost.kvm_memslot
          + c.Riscv.Cost.kvm_host_alloc + c.Riscv.Cost.page_scrub
          + c.Riscv.Cost.kvm_map
          + (3 * c.Riscv.Cost.page_walk_step)
          + c.Riscv.Cost.kvm_fence + c.Riscv.Cost.kvm_restore
          + c.Riscv.Cost.xret
        in
        t.fault <- t.fault +. (float_of_int pages *. float_of_int kvm)
    | Confidential ->
        let base =
          c.Riscv.Cost.trap_entry + c.Riscv.Cost.sm_fault_decode
          + c.Riscv.Cost.sm_fault_validate + c.Riscv.Cost.page_cache_alloc
          + c.Riscv.Cost.page_scrub
          + (3 * c.Riscv.Cost.page_walk_step)
          + c.Riscv.Cost.gstage_map + c.Riscv.Cost.sm_fault_bookkeeping
          + c.Riscv.Cost.xret
        in
        let block_grabs = pages / 64 in
        t.fault <-
          t.fault
          +. (float_of_int pages *. float_of_int base)
          +. (float_of_int block_grabs *. float_of_int c.Riscv.Cost.block_grab)
  end

let switch_refill t = Workloads.Opcount.refill_cycles t.cost t.locality

(* One MMIO access round trip. *)
let mmio_round_trip t =
  match t.kind with
  | Normal -> t.cost.Riscv.Cost.hs_mmio_exit
  | Confidential ->
      let r = switch_refill t in
      t.refill <- t.refill +. float_of_int r;
      Zion.Monitor.path_cost t.monitor Zion.Monitor.Exit_with_mmio
      + Zion.Monitor.path_cost t.monitor Zion.Monitor.Entry_with_mmio
      + r

let bounce_word_cycles = 3

let blk_service_cycles ~bytes = 20_000 + (2 * bytes)

(* Exitless ring accounting for one device access: the guest publishes
   with plain stores (ring_submit) and later validates the completion
   (ring_consume_check); the host's polling beat and single used-index
   publish amortize over the batch. No world switch, no refill. *)
let ring_access_cycles t =
  let c = t.cost in
  c.Riscv.Cost.ring_submit + c.Riscv.Cost.ring_consume_check
  + c.Riscv.Cost.ring_host_service
  + ((c.Riscv.Cost.ring_host_poll + c.Riscv.Cost.ring_notify)
     / exitless_batch)

let add_blk_request t ~bytes =
  let copy =
    match t.kind with
    | Normal -> 0
    | Confidential -> (bytes + 7) / 8 * bounce_word_cycles
  in
  let io_path =
    match (t.kind, t.io_mode) with
    | Confidential, Exitless -> ring_access_cycles t
    | _ ->
        let accesses = 2 (* kick write + status read *) in
        accesses * mmio_round_trip t
  in
  t.io <- t.io +. float_of_int (io_path + copy + blk_service_cycles ~bytes)

let add_net_access t ~copied_bytes =
  let copy =
    match t.kind with
    | Normal -> 0
    | Confidential -> (copied_bytes + 7) / 8 * bounce_word_cycles
  in
  let io_path =
    match (t.kind, t.io_mode) with
    | Confidential, Exitless -> ring_access_cycles t
    | _ -> mmio_round_trip t
  in
  t.io <- t.io +. float_of_int (io_path + copy)

let tick_cost t =
  match t.kind with
  | Normal -> float_of_int t.cost.Riscv.Cost.hs_timer_tick
  | Confidential ->
      float_of_int
        (Zion.Monitor.path_cost t.monitor Zion.Monitor.Exit_plain
        + Zion.Monitor.path_cost t.monitor Zion.Monitor.Entry_plain
        + switch_refill t)

let total_cycles t =
  let base = t.work +. t.fault +. t.io in
  (* Every quantum of elapsed time costs one timer tick; the tick itself
     consumes time, so the effective rate dilates. *)
  let tick = tick_cost t in
  base /. (1. -. (tick /. quantum))

let breakdown t =
  let tick = tick_cost t in
  let total = total_cycles t in
  let ticks = total /. quantum in
  [
    ("work", t.work);
    ("faults", t.fault);
    ("io", t.io);
    ("ticks", ticks *. tick);
    ("refill(io)", t.refill);
  ]
