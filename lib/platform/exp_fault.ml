type report = {
  normal_mean : float;
  stage1_mean : float;
  stage2_mean : float;
  stage3_mean : float;
  cvm_weighted_mean : float;
  stage1_count : int;
  stage2_count : int;
  stage3_count : int;
  normal_count : int;
  cvm_attribution : (string * int) list;
}

let mean = function
  | [] -> 0.
  | xs -> Metrics.Stats.mean (Array.of_list (List.map float_of_int xs))

let touch_and_stop pages =
  Guest.Gprog.touch_pages ~start_gpa:0x800000L ~pages @ Guest.Gprog.shutdown

let run ?(pages = 200) () =
  (* Normal VM arm. *)
  let tb_n = Testbed.create () in
  let nvm = Testbed.nvm tb_n (touch_and_stop pages) in
  (match
     Hypervisor.Kvm.run_normal_vm tb_n.Testbed.kvm nvm ~hart:0
       ~max_steps:10_000_000
   with
  | Hypervisor.Kvm.N_shutdown -> ()
  | _ -> failwith "exp_fault: normal VM did not shut down");
  let normal_faults = Hypervisor.Kvm.nvm_fault_log tb_n.Testbed.kvm in
  (* CVM arm, with a pool small enough that the touch storm crosses a
     stage-3 expansion (1 MiB = 4 blocks). *)
  let tb_c = Testbed.create ~pool_mib:1 () in
  let handle = Testbed.cvm tb_c (touch_and_stop pages) in
  let ledger = tb_c.Testbed.machine.Riscv.Machine.ledger in
  let before = Metrics.Ledger.snapshot ledger in
  (match
     Hypervisor.Kvm.run_cvm_to_completion tb_c.Testbed.kvm handle ~hart:0
       ~quantum:Testbed.quantum_cycles ~max_slices:100
   with
  | Hypervisor.Kvm.C_shutdown -> ()
  | _ -> failwith "exp_fault: CVM did not shut down");
  let log = Zion.Monitor.fault_log tb_c.Testbed.monitor in
  let by_stage s =
    List.filter_map (fun (st, c) -> if st = s then Some c else None) log
  in
  let s1 = by_stage Zion.Hier_alloc.Stage1 in
  let s2 = by_stage Zion.Hier_alloc.Stage2 in
  let s3 = by_stage Zion.Hier_alloc.Stage3_retry in
  {
    normal_mean = mean normal_faults;
    stage1_mean = mean s1;
    stage2_mean = mean s2;
    stage3_mean = mean s3;
    cvm_weighted_mean = mean (List.map snd log);
    stage1_count = List.length s1;
    stage2_count = List.length s2;
    stage3_count = List.length s3;
    normal_count = List.length normal_faults;
    cvm_attribution =
      Metrics.Ledger.snapshot_totals
        (Metrics.Ledger.diff ~earlier:before
           ~later:(Metrics.Ledger.snapshot ledger));
  }

let paper =
  [
    ("normal VM", 39607.);
    ("CVM stage 1", 31103.);
    ("CVM stage 2", 34729.);
    ("CVM stage 3", 57152.);
    ("CVM average", 31449.);
  ]
