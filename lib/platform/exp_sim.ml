let scratch = Int64.add Riscv.Bus.dram_base 0x40000L
let ring = Int64.add Riscv.Bus.dram_base 0x80000L

type workload = Rv8_mix | Coremark_mix | Rv8_mix_paged

let all = [ Rv8_mix; Coremark_mix; Rv8_mix_paged ]

let name = function
  | Rv8_mix -> "rv8_mix"
  | Coremark_mix -> "coremark_mix"
  | Rv8_mix_paged -> "rv8_mix_paged"

let of_name s = List.find_opt (fun w -> name w = s) all

(* Arithmetic/memory mix in the style of the rv8 kernels: mul-accumulate,
   store/load round-trip, shifts, an AMO, and a counted inner loop. *)
let prog_rv8 =
  let open Riscv.Decode in
  List.concat
    [
      Riscv.Asm.li Riscv.Asm.s0 scratch;
      Riscv.Asm.li 28 (* t3 *) 4096L;
      [
        (* loop: *)
        Op_imm (Add, Riscv.Asm.t1, Riscv.Asm.t1, 1L);
        Muldiv (Mul, Riscv.Asm.t2, Riscv.Asm.t1, Riscv.Asm.t1);
        Op (Add, Riscv.Asm.a0, Riscv.Asm.a0, Riscv.Asm.t2);
        Op (Xor, Riscv.Asm.a1, Riscv.Asm.a1, Riscv.Asm.a0);
        Store { rs1 = Riscv.Asm.s0; rs2 = Riscv.Asm.a0; imm = 0L; width = D };
        Load
          {
            rd = Riscv.Asm.a2;
            rs1 = Riscv.Asm.s0;
            imm = 0L;
            width = D;
            unsigned = false;
          };
        Op_imm (Srl, Riscv.Asm.a3, Riscv.Asm.a2, 3L);
        Op (And, Riscv.Asm.a4, Riscv.Asm.a3, Riscv.Asm.a1);
        Amo
          {
            op = Amoadd;
            rd = Riscv.Asm.a5;
            rs1 = Riscv.Asm.s0;
            rs2 = Riscv.Asm.t1;
            width = D;
          };
        Branch (Bne, Riscv.Asm.t1, 28, -36L);
        Op_imm (Add, Riscv.Asm.t1, Riscv.Asm.zero, 0L);
        Riscv.Asm.j (-44L);
      ];
    ]

(* Pointer-chase + CRC-rotate + branchy state machine in the style of
   CoreMark's list/state/crc thirds. [t0] walks a 64-node ring that the
   harness lays out in scratch memory before the run. *)
let prog_coremark =
  let open Riscv.Decode in
  List.concat
    [
      Riscv.Asm.li Riscv.Asm.t0 ring;
      [
        (* loop: *)
        Load
          {
            rd = Riscv.Asm.t0;
            rs1 = Riscv.Asm.t0;
            imm = 0L;
            width = D;
            unsigned = false;
          };
        Op (Xor, Riscv.Asm.s1, Riscv.Asm.s1, Riscv.Asm.t0);
        Op_imm (Sll, Riscv.Asm.t2, Riscv.Asm.s1, 1L);
        Op_imm (Srl, Riscv.Asm.a3, Riscv.Asm.s1, 63L);
        Op (Or, Riscv.Asm.s1, Riscv.Asm.t2, Riscv.Asm.a3);
        Op_imm (Add, Riscv.Asm.a0, Riscv.Asm.a0, 1L);
        Op_imm (And, Riscv.Asm.t2, Riscv.Asm.a0, 7L);
        Branch (Beq, Riscv.Asm.t2, Riscv.Asm.zero, 12L);
        Op (Add, Riscv.Asm.a1, Riscv.Asm.a1, Riscv.Asm.s1);
        Riscv.Asm.j (-36L);
        Muldiv (Mul, Riscv.Asm.a1, Riscv.Asm.a0, Riscv.Asm.s1);
        Riscv.Asm.j (-44L);
      ];
    ]

let program = function
  | Rv8_mix | Rv8_mix_paged -> prog_rv8
  | Coremark_mix -> prog_coremark

let paged = function Rv8_mix_paged -> true | Rv8_mix | Coremark_mix -> false

type state = {
  clock : int;
  categories : (string * int) list;
  regs : int64 array;
  pc : int64;
  minstret : int64;
}

type run = { executed : int; seconds : float; state : state }

(* One measured run: fresh machine, workload installed, [steps]
   architectural steps. Paged workloads run in HS mode under an Sv39
   identity megapage so the translation memos, TLB statistics and
   page-walk charges are all on the measured path. *)
let run workload ~fast ~steps =
  let open Riscv in
  let m = Machine.create ~dram_size:(Int64.of_int (64 * 1024 * 1024)) () in
  let hart = Machine.hart m 0 in
  Hart.set_fast_path hart fast;
  Machine.load_program m Bus.dram_base (program workload);
  (* pointer ring for the CoreMark-like chase *)
  let dram = Bus.dram m.Machine.bus in
  let ring_off = Int64.sub ring Bus.dram_base in
  for i = 0 to 63 do
    Physmem.write_u64 dram
      (Int64.add ring_off (Int64.of_int (i * 64)))
      (Int64.add ring (Int64.of_int ((i + 1) mod 64 * 64)))
  done;
  hart.Hart.pc <- Bus.dram_base;
  if paged workload then begin
    (* Identity-map the first 2 MiB of DRAM with one Sv39 megapage;
       the page tables live above it, reached physically by the
       walker. PMP entry 0 opens DRAM to HS mode. *)
    let root_off = 0x200000L in
    let root = Int64.add Bus.dram_base root_off in
    let l1 = Int64.add root 0x1000L in
    Physmem.write_u64 dram
      (Int64.add root_off (Int64.of_int (2 * 8)))
      (Pte.make_pointer ~ppn:(Int64.shift_right_logical l1 12));
    Physmem.write_u64 dram
      (Int64.add root_off 0x1000L)
      (Pte.make
         ~ppn:(Int64.shift_right_logical Bus.dram_base 12)
         ~r:true ~w:true ~x:true ~valid:true ());
    Pmp.set_napot_region hart.Hart.csr.Csr.pmp 0 ~base:Bus.dram_base
      ~size:(Int64.of_int (64 * 1024 * 1024))
      ~r:true ~w:true ~x:true;
    hart.Hart.csr.Csr.satp <- Sv39.satp_of ~asid:1 ~root;
    hart.Hart.mode <- Priv.HS
  end;
  let t0 = Sys.time () in
  let executed = Machine.run_hart m 0 ~max_steps:steps in
  let seconds = Sys.time () -. t0 in
  {
    executed;
    seconds;
    state =
      {
        clock = Metrics.Ledger.now m.Machine.ledger;
        categories = Metrics.Ledger.categories m.Machine.ledger;
        regs = Array.copy hart.Hart.regs;
        pc = hart.Hart.pc;
        minstret = hart.Hart.csr.Csr.minstret;
      };
  }

type ab = {
  workload : workload;
  baseline_ips : float;
  fast_ips : float;
  speedup : float;
  identical : bool;
}

let ab_compare workload ~steps =
  let slow = run workload ~fast:false ~steps in
  let fast = run workload ~fast:true ~steps in
  assert (slow.executed = steps && fast.executed = steps);
  let baseline_ips = float_of_int slow.executed /. slow.seconds in
  let fast_ips = float_of_int fast.executed /. fast.seconds in
  {
    workload;
    baseline_ips;
    fast_ips;
    speedup = fast_ips /. baseline_ips;
    identical = slow.state = fast.state;
  }

let write_json path ~steps results =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"steps_per_run\": %d,\n  \"workloads\": [\n" steps;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"baseline_ips\": %.0f, \"fast_ips\": %.0f, \
         \"speedup\": %.3f, \"identical\": %b}%s\n"
        (name r.workload) r.baseline_ips r.fast_ips r.speedup r.identical
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc
