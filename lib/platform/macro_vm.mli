(** Event-priced VM model for the macro benchmarks (Table I, CoreMark,
    Figures 3 and 4).

    The micro experiments run real guest instructions on the simulated
    hart; the macro workloads execute their algorithms natively and
    replay as an {e event stream} — instruction mixes, demand-paging
    faults, device requests, timer ticks — priced by the same cost
    compositions the live monitor charges ([Zion.Monitor.path_cost]) and
    the same KVM fault/emulation constants. Both arms of every
    comparison (normal VM vs confidential VM) share all constants;
    they differ only in which paths their events take, mirroring the
    real machines.

    The confidential arm additionally pays, per world switch, the
    microarchitectural refill implied by ZION's PMP/hgatp switching
    (TLB and L1 flushes), sized by the workload's locality descriptor —
    the effect the paper's §V.B.2 discussion attributes the residual
    overhead to. *)

type kind = Normal | Confidential

type io_mode =
  | Exitful  (** MMIO kick + status read: two world switches per request *)
  | Exitless
      (** ring publish with plain stores; host polling beat amortized
          over {!exitless_batch} requests. Confidential arm only —
          normal VMs always take the HS MMIO path. *)

type t

val create :
  kind:kind ->
  ?io_mode:io_mode ->
  monitor:Zion.Monitor.t ->
  locality:Workloads.Opcount.locality ->
  unit ->
  t

val add_ops : t -> Workloads.Opcount.t -> unit
(** Account computed work (priced per instruction class). *)

val add_cycles : t -> int -> unit
(** Account pre-priced work (e.g. fixed kernel-stack costs). *)

val add_faults : t -> pages:int -> unit
(** Demand-paging events: normal VMs pay the KVM path, confidential VMs
    the hierarchical-allocator mix (page-cache hits with a stage-2 block
    grab every 64 pages). *)

val add_blk_request : t -> bytes:int -> unit
(** One virtio-blk request: two MMIO accesses (kick + status) plus
    device service time; the confidential arm adds the SWIOTLB bounce
    copy and the per-switch refill. *)

val add_net_access : t -> copied_bytes:int -> unit
(** One MMIO access on the net device with [copied_bytes] moved through
    the bounce buffer (confidential arm only pays the copy). *)

val total_cycles : t -> float
(** Total modeled cycles including timer-tick overhead: every 10 ms
    quantum of accumulated time costs one tick on the VM's tick path. *)

val breakdown : t -> (string * float) list
(** Named components of the total (work, faults, io, ticks, refill). *)

val blk_service_cycles : bytes:int -> int
(** Device-side service time for one block request (shared by both
    arms): fixed command overhead plus streaming transfer. *)

val bounce_word_cycles : int
(** Effective cycles per 8-byte word of SWIOTLB copy. *)

val exitless_batch : int
(** Requests amortizing one host polling beat + used-index publish in
    the exitless model. *)
