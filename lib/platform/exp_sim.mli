(** Simulator fast-path A/B benchmark (§ DESIGN 14).

    The other experiments measure the modelled guest; this one measures
    the interpreter itself. Each workload is a real guest loop assembled
    with [Riscv.Asm] and stepped instruction by instruction — once with
    the fast path off, once on. The fast path must be architecturally
    invisible: registers, pc, minstret and the full cycle ledger must
    match exactly between the two arms; only the wall clock may differ. *)

type workload =
  | Rv8_mix  (** mul/xor/store/load/shift/AMO mix, machine mode, bare *)
  | Coremark_mix  (** pointer-chase + CRC-rotate + branchy state machine *)
  | Rv8_mix_paged  (** the rv8 mix in HS mode under an Sv39 megapage *)

val all : workload list
val name : workload -> string
val of_name : string -> workload option

type state = {
  clock : int;
  categories : (string * int) list;
  regs : int64 array;
  pc : int64;
  minstret : int64;
}
(** Everything architecturally visible after a run, including the full
    cycle-ledger attribution. Compared structurally between arms. *)

type run = { executed : int; seconds : float; state : state }

val run : workload -> fast:bool -> steps:int -> run
(** One measured run on a fresh single-hart machine. *)

type ab = {
  workload : workload;
  baseline_ips : float;
  fast_ips : float;
  speedup : float;
  identical : bool;  (** [state] equal between the two arms *)
}

val ab_compare : workload -> steps:int -> ab
(** Run [workload] with the fast path off then on; compare. *)

val write_json : string -> steps:int -> ab list -> unit
(** Emit the BENCH_sim.json shape CI gates on. *)
