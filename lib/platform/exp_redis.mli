(** Figure 3 — Redis throughput and latency, normal VM vs confidential
    VM.

    A redis-benchmark-style client drives the real RESP server
    ([Workloads.Redis]) with [rounds] × [requests] commands per
    operation type. Every request's server-side instruction mix is
    measured; the event model adds the guest kernel's network-stack
    cost, the virtio-net MMIO accesses (with interrupt coalescing) and,
    for the confidential VM, SWIOTLB bounce copies and post-switch
    refills. *)

type row = {
  op : string;
  normal_kqps : float;  (** thousand requests per second *)
  cvm_kqps : float;
  throughput_drop_pct : float;
  normal_latency_ms : float;
  cvm_latency_ms : float;
  latency_increase_pct : float;
}

val run :
  ?rounds:int -> ?requests:int -> ?io_mode:Macro_vm.io_mode -> unit -> row list
(** Defaults: 10 rounds × 10,000 requests, as in the paper. [io_mode]
    selects the confidential arm's virtio-net path (exitful MMIO kicks
    vs the exitless shared-memory ring). *)

type traced_stats = {
  t_requests : int;  (** requests baked into the guest program *)
  t_completed : int;  (** requests that reached the host-side server *)
  t_total_cycles : int;
  t_outcome : Hypervisor.Kvm.cvm_outcome;
}

val run_traced :
  ?ops:string list ->
  ?requests:int ->
  ?key_space:int ->
  ?profile_interval:int ->
  ?quantum:int ->
  ?max_slices:int ->
  ?on_slice:(int -> Testbed.t -> unit) ->
  unit ->
  Testbed.t * traced_stats
(** Run a real CVM guest that sends [requests] RESP commands (cycling
    through [ops], default [SET]/[GET]) over virtio-net to the
    host-side Redis server, with the platform flight recorder enabled
    and span contexts propagated end to end: each request is a
    ["resp.request"] root span whose context stamps the world-switch,
    virtio and ecall events it causes. Per-request latency is observed
    into the registry's per-CVM ["request_cycles"] histogram (which is
    what {!Zion.Monitor.health_snapshot} reports as p50/p99).
    [profile_interval], when given, also enables the guest PC-sampling
    profiler for the duration of the run and registers the guest text
    as a symbol region. [on_slice] is called after every expired
    quantum — the live hook behind [zionctl top]. The returned testbed
    exposes the trace, registry and profiler for export. *)

val average_throughput_drop : row list -> float
val average_latency_increase : row list -> float

val paper_avgs : float * float
(** (−5.3 % throughput, +4 % latency). *)

val kernel_stack_cycles : int
(** Guest network-stack cost per request (socket, softirq, copies). *)

val client_overhead_cycles : int
(** Benchmark-client side of the measured round-trip latency. *)

val mmio_accesses_per_request : float
(** Effective virtio-net MMIO accesses per request after interrupt
    coalescing/NAPI. *)
