(** Virtio-style network device with a host-side packet peer.

    The guest transmits by filling a descriptor (length + buffer GPA) in
    shared memory and kicking; it receives by asking the device to copy
    the next pending packet into a pre-programmed RX buffer. A host-side
    peer (the benchmark client, for Redis) is a callback that consumes
    TX packets and may enqueue RX replies.

    Register map (offsets within the device's MMIO slot):
    - [0x00] (write, 8 B): TX descriptor GPA (length 4 B | pad 4 B | data GPA 8 B)
    - [0x08] (write, 4 B): value 1 = TX kick; value 2 = RX fill
    - [0x10] (read, 4 B): length of the packet delivered by the last RX
      fill, 0 when the RX queue was empty
    - [0x18] (write, 8 B): RX buffer GPA *)

type t

val sid : int
val create : bus:Riscv.Bus.t -> t
val set_translate : t -> (int64 -> int64 option) -> unit

val set_trace : t -> Metrics.Trace.t -> unit
(** Attach the platform flight recorder. While it is enabled the
    device emits ["net.tx"]/["net.tx_complete"] instants around the
    peer callback and a ["net.rx_fill"] span with a
    ["net.rx_complete"] instant per delivered packet — all stamped
    with whatever span context the workload installed on the trace,
    which is how a request's virtio completion joins its span tree. *)

val set_peer : t -> (string -> string option) -> unit
(** [set_peer t f]: [f packet] is called on every TX packet; a [Some
    reply] is appended to the RX queue. *)

val inject_rx : t -> string -> unit
(** Queue a packet for the guest (client-initiated traffic). *)

val mmio_read : t -> int64 -> int -> int64
val mmio_write : t -> int64 -> int -> int64 -> unit

val serve_ring_tx : t -> data_gpa:int64 -> len:int -> (int, string) result
(** Exitless-ring TX: DMA the packet out and run the peer callback
    (replies land on the RX queue). Returns bytes sent or an error
    label; may raise [Riscv.Bus.Fault] on an IOPMP reject. *)

val serve_ring_rx : t -> data_gpa:int64 -> len:int -> (int, string) result
(** Exitless-ring RX fill: deliver the next pending packet into the
    descriptor's buffer. [Ok 0] when the queue is empty; an oversized
    packet is left queued and reported as an error. *)

val tx_packets : t -> string list
(** Transmitted packets, oldest first. *)

val tx_count : t -> int
val rx_pending : t -> int
