open Riscv

type expand_policy =
  | Expand_honest
  | Expand_deny
  | Expand_delay of int
  | Expand_short

type io_binding = {
  io_guest : Virtio_ring.guest;
  io_host : Virtio_ring.host;
}

type t = {
  machine : Machine.t;
  monitor : Zion.Monitor.t;
  mem : Host_mem.t;
  devices : Mmio_emul.t;
  cost : Cost.t;
  mutable io_bindings : (int * io_binding) list;  (* cvm id -> ring *)
  mutable nvm_faults : int list;
  mutable ticks : int;
  mutable mmio_serviced : int;
  mutable expansions : int;
  mutable expand_stalls : int;
  mutable expand_policy : expand_policy;
  mutable next_nvm_id : int;
  mutable backoff_rng : int64;
      (* splitmix64 state for backoff jitter; seeded per instance so a
         fleet of tenants desynchronises deterministically *)
}

let kernel_reserve = 0x100_0000L (* 16 MiB host kernel image *)

(* Distinct seed per hypervisor instance: O(100) tenants created from
   the same harness must not retry expansion in lockstep. *)
let instance_counter = ref 0

let splitmix64 state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  (z, Int64.logxor z (Int64.shift_right_logical z 31))

let create ~machine ~monitor ?(disk_sectors = 262144) () =
  let bus = machine.Machine.bus in
  let base = Int64.add Bus.dram_base kernel_reserve in
  let size = Int64.sub (Bus.dram_size bus) kernel_reserve in
  let devices = Mmio_emul.create ~bus ~disk_sectors in
  Mmio_emul.set_trace devices (Zion.Monitor.trace monitor);
  {
    machine;
    monitor;
    mem = Host_mem.create ~base ~size;
    devices;
    cost = machine.Machine.cost;
    io_bindings = [];
    nvm_faults = [];
    ticks = 0;
    mmio_serviced = 0;
    expansions = 0;
    expand_stalls = 0;
    expand_policy = Expand_honest;
    next_nvm_id = 1;
    backoff_rng =
      (incr instance_counter;
       Int64.of_int (!instance_counter * 0x2545F491));
  }

let set_expand_policy t p = t.expand_policy <- p

let machine t = t.machine
let monitor t = t.monitor
let trace t = Zion.Monitor.trace t.monitor
let obs t = Metrics.Trace.is_enabled (trace t)
let host_mem t = t.mem
let devices t = t.devices
let ledger t = t.machine.Machine.ledger
let charge t cat cycles = Metrics.Ledger.charge (ledger t) cat cycles

let block_size = Zion.Layout.default_block_size

let donate_secure_pool t ~mib =
  let bytes = Int64.mul (Int64.of_int mib) 0x100000L in
  let npages = Int64.to_int (Int64.div bytes 4096L) in
  match Host_mem.alloc_pages t.mem ~align:bytes npages with
  | None -> Error "not enough contiguous host memory for the pool"
  | Some base -> begin
      match
        Zion.Monitor.register_secure_region t.monitor ~base ~size:bytes
      with
      | Ok _ -> Ok ()
      | Error e -> Error (Zion.Ecall.error_to_string e)
    end

(* ---------- normal VMs ---------- *)

type nvm = {
  nid : int;
  spt : Zion.Spt.t;
  nvm_shared : Shared_map.t;
      (** normal VMs use the same >=1 GiB window for device buffers *)
  sv : Zion.Vcpu.secure;
  mutable alive : bool;
  hgatp_seen : (int, int64) Hashtbl.t;
      (** hart id -> hgatp last installed for this VM there; resume only
          fences the VMID when the value changes (epoch bump), so the
          steady state pays no invalidation at all *)
}

type normal_exit = N_timer | N_shutdown | N_limit | N_error of string

let zero_page t pa = Bus.write_bytes t.machine.Machine.bus pa (String.make 4096 '\x00')

let create_normal_vm t ~entry_pc ~image =
  match Host_mem.alloc_pages t.mem ~align:0x4000L 4 with
  | None -> Error "out of host memory for stage-2 root"
  | Some root -> (
      let spt =
        Zion.Spt.create ~bus:t.machine.Machine.bus ~root
          ~alloc_table_page:(fun () -> Host_mem.alloc_pages t.mem 1)
      in
      match Shared_map.create ~bus:t.machine.Machine.bus t.mem with
      | Error e -> Error e
      | Ok nvm_shared ->
      match
        Zion.Spt.install_shared_root spt
          ~is_secure:(fun _ -> false)
          ~table_pa:(Shared_map.root nvm_shared)
      with
      | Error e -> Error e
      | Ok () ->
      let nvm =
        {
          nid = t.next_nvm_id;
          spt;
          nvm_shared;
          sv = Zion.Vcpu.fresh_secure ~entry_pc;
          alive = true;
          hgatp_seen = Hashtbl.create 4;
        }
      in
      t.next_nvm_id <- t.next_nvm_id + 1;
      (* Eagerly populate the image pages. *)
      let load (gpa, data) =
        let len = String.length data in
        let npages = (len + 4095) / 4096 in
        let rec go i =
          if i >= npages then Ok ()
          else begin
            let page_gpa = Int64.add gpa (Int64.of_int (i * 4096)) in
            match Host_mem.alloc_pages t.mem 1 with
            | None -> Error "out of host memory for guest image"
            | Some pa -> begin
                zero_page t pa;
                match
                  Zion.Spt.map_private nvm.spt ~gpa:page_gpa ~pa
                    ~writable:true
                with
                | Error e -> Error e
                | Ok () ->
                    Bus.write_bytes t.machine.Machine.bus pa
                      (String.sub data (i * 4096)
                         (min 4096 (len - (i * 4096))));
                    go (i + 1)
              end
          end
        in
        go 0
      in
      let rec load_all = function
        | [] -> Ok nvm
        | chunk :: rest -> begin
            match load chunk with Error e -> Error e | Ok () -> load_all rest
          end
      in
      load_all image)

(* KVM's stage-2 fault path for a normal VM: the 39,607-cycle
   composition of §V.C's baseline column. *)
let kvm_fault_cost c =
  c.Cost.trap_entry + c.Cost.kvm_save + c.Cost.kvm_dispatch
  + c.Cost.kvm_memslot + c.Cost.kvm_host_alloc + c.Cost.page_scrub
  + c.Cost.kvm_map + (3 * c.Cost.page_walk_step) + c.Cost.kvm_fence
  + c.Cost.kvm_restore + c.Cost.xret

let handle_nvm_fault t nvm gpa =
  let page_gpa = Xword.align_down gpa 4096L in
  if Zion.Layout.is_shared_gpa page_gpa then begin
    (* device-buffer window: backed like any other guest RAM, but kept
       in the hypervisor's subtree so the layout matches the CVM case *)
    match Shared_map.map_fresh nvm.nvm_shared ~gpa:page_gpa with
    | Ok _ ->
        let cycles = kvm_fault_cost t.cost in
        charge t "kvm_fault" (cycles - t.cost.Cost.trap_entry);
        t.nvm_faults <- cycles :: t.nvm_faults;
        Ok ()
    | Error e -> Error e
  end
  else
  match Host_mem.alloc_pages t.mem 1 with
  | None -> Error "host out of memory"
  | Some pa -> begin
      zero_page t pa;
      match Zion.Spt.map_private nvm.spt ~gpa:page_gpa ~pa ~writable:true with
      | Error e -> Error e
      | Ok () ->
          let cycles = kvm_fault_cost t.cost in
          charge t "kvm_fault" (cycles - t.cost.Cost.trap_entry);
          t.nvm_faults <- cycles :: t.nvm_faults;
          Ok ()
    end

(* Resume a normal VM's guest after an HS-level trap. *)
let resume_nvm t (hart : Hart.t) ~skip =
  let csr = hart.Hart.csr in
  hart.Hart.mode <- Priv.VS;
  hart.Hart.pc <- (if skip then Int64.add csr.Csr.sepc 4L else csr.Csr.sepc);
  charge t "xret" t.cost.Cost.xret

let in_virtio_window gpa =
  (not (Xword.ult gpa Zion.Layout.virtio_mmio_gpa))
  && Xword.ult gpa
       (Int64.add Zion.Layout.virtio_mmio_gpa Zion.Layout.virtio_mmio_size)

let handle_nvm_sbi t (hart : Hart.t) =
  let a7 = Hart.get_reg hart 17 and a0 = Hart.get_reg hart 10 in
  if a7 = Zion.Ecall.sbi_legacy_putchar then begin
    Bus.write t.machine.Machine.bus Bus.uart_base 1 (Int64.logand a0 0xFFL);
    Hart.set_reg hart 10 0L;
    `Resume
  end
  else if a7 = Zion.Ecall.sbi_legacy_shutdown then `Shutdown
  else begin
    Hart.set_reg hart 10 (Zion.Ecall.error_code Zion.Ecall.Not_found);
    `Resume
  end

let run_normal_vm t nvm ~hart:hart_id ~max_steps =
  if not nvm.alive then N_error "vm is dead"
  else begin
    let hart = t.machine.Machine.harts.(hart_id) in
    (* Devices resolve guest addresses through this VM's tables. *)
    Mmio_emul.set_translate t.devices (fun gpa ->
        if Zion.Layout.is_shared_gpa gpa then
          Shared_map.lookup nvm.nvm_shared ~gpa
        else Zion.Spt.lookup nvm.spt ~gpa);
    (* Host-side world switch into the guest: normal KVM entry. *)
    Zion.Deleg_policy.apply_normal hart;
    let vmid = 1000 + nvm.nid in
    let hgatp = Sv39.hgatp_of ~vmid ~root:(Zion.Spt.root nvm.spt) in
    hart.Hart.csr.Csr.hgatp <- hgatp;
    (* Epoch-bump invalidation instead of fencing every resume: the
       VMID is fenced on this hart only the first time this VM lands
       there or after its stage-2 root changed — whatever the retained
       entries under this VMID once meant, they are gone before any
       guest access can use them. *)
    if Hashtbl.find_opt nvm.hgatp_seen hart_id <> Some hgatp then begin
      Tlb.flush_vmid hart.Hart.tlb vmid;
      Hart.invalidate_fast_path hart;
      charge t "nvm_tlb_fence" t.cost.Cost.tlb_vmid_flush;
      Hashtbl.replace nvm.hgatp_seen hart_id hgatp
    end;
    Zion.Vcpu.restore_to_hart nvm.sv hart;
    hart.Hart.mode <- Priv.VS;
    hart.Hart.wfi_stalled <- false;
    charge t "nvm_entry" (t.cost.Cost.kvm_restore + t.cost.Cost.xret);
    let save_back () =
      Zion.Vcpu.save_from_hart hart nvm.sv;
      if hart.Hart.mode <> Priv.VS && hart.Hart.mode <> Priv.VU then begin
        (* exited through a trap: resume point is in sepc or mepc *)
        let csr = hart.Hart.csr in
        nvm.sv.Zion.Vcpu.pc <-
          (if hart.Hart.mode = Priv.M then csr.Csr.mepc else csr.Csr.sepc)
      end;
      hart.Hart.mode <- Priv.HS
    in
    let rec loop steps =
      if steps >= max_steps then begin
        save_back ();
        N_limit
      end
      else begin
        Machine.sync_time t.machine;
        Exec.step hart;
        match hart.Hart.mode with
        | Priv.VS | Priv.VU -> loop (steps + 1)
        | Priv.HS -> handle_hs_trap steps
        | Priv.M ->
            (* Timer interrupts land in M (mideleg cannot delegate MTI). *)
            let cause = hart.Hart.csr.Csr.mcause in
            if Int64.compare cause 0L < 0 then begin
              charge t "hs_timer_tick"
                (t.cost.Cost.hs_timer_tick - t.cost.Cost.trap_entry);
              t.ticks <- t.ticks + 1;
              save_back ();
              N_timer
            end
            else begin
              save_back ();
              N_error
                (Printf.sprintf "unexpected M trap: %Ld"
                   hart.Hart.csr.Csr.mcause)
            end
        | Priv.U -> loop (steps + 1)
      end
    and handle_hs_trap steps =
      let csr = hart.Hart.csr in
      let code = Int64.to_int (Int64.logand csr.Csr.scause 0xFFL) in
      let is_interrupt = Int64.compare csr.Csr.scause 0L < 0 in
      if is_interrupt then begin
        charge t "hs_timer_tick"
          (t.cost.Cost.hs_timer_tick - t.cost.Cost.trap_entry);
        t.ticks <- t.ticks + 1;
        save_back ();
        N_timer
      end
      else begin
        match Cause.exception_of_code code with
        | Some Cause.Ecall_from_vs -> begin
            match handle_nvm_sbi t hart with
            | `Resume ->
                resume_nvm t hart ~skip:true;
                loop (steps + 1)
            | `Shutdown ->
                nvm.alive <- false;
                save_back ();
                N_shutdown
          end
        | Some
            (Cause.Load_guest_page_fault | Cause.Store_guest_page_fault
            | Cause.Instr_guest_page_fault) ->
            let gpa =
              Int64.logor
                (Int64.shift_left csr.Csr.htval 2)
                (Int64.logand csr.Csr.stval 3L)
            in
            if in_virtio_window gpa then begin
              (* Direct MMIO emulation in HS: the 5,000-cycle path. *)
              match
                Zion.Vcpu.decode_mmio
                  {
                    (Zion.Vcpu.fresh_secure ~entry_pc:0L) with
                    Zion.Vcpu.regs = Array.copy hart.Hart.regs;
                  }
                  ~htinst:csr.Csr.htinst ~gpa
              with
              | Error e ->
                  save_back ();
                  N_error e
              | Ok mmio ->
                  let result = Mmio_emul.handle t.devices mmio in
                  charge t "hs_mmio"
                    (t.cost.Cost.hs_mmio_exit - t.cost.Cost.trap_entry);
                  t.mmio_serviced <- t.mmio_serviced + 1;
                  if not mmio.Zion.Vcpu.mmio_write then
                    Hart.set_reg hart mmio.Zion.Vcpu.mmio_reg result;
                  resume_nvm t hart ~skip:true;
                  loop (steps + 1)
            end
            else begin
              match handle_nvm_fault t nvm gpa with
              | Ok () ->
                  resume_nvm t hart ~skip:false;
                  loop (steps + 1)
              | Error e ->
                  save_back ();
                  N_error e
            end
        | Some e ->
            save_back ();
            N_error (Cause.to_string (Cause.Exception e))
        | None ->
            save_back ();
            N_error "unknown scause"
      end
    in
    loop 0
  end

let nvm_fault_log t = t.nvm_faults
let nvm_timer_ticks t = t.ticks

(* ---------- confidential VMs ---------- *)

type cvm_handle = { cid : int; shared : Shared_map.t }

let cvm_id h = h.cid
let cvm_shared_map h = h.shared

let create_cvm_guest t ~entry_pc ~image =
  match Zion.Monitor.create_cvm t.monitor ~nvcpus:1 ~entry_pc with
  | Error e -> Error (Zion.Ecall.error_to_string e)
  | Ok cid ->
      (* Once the CVM exists inside the SM it holds secure blocks; any
         failure on the remaining setup steps must tear it down again
         or the pool leaks a half-built guest. *)
      let abort e =
        ignore
          (Zion.Monitor.destroy_cvm t.monitor ~cvm:cid
            : (unit, Zion.Ecall.error) result);
        Error e
      in
      let rec load = function
        | [] -> Ok ()
        | (gpa, data) :: rest -> begin
            match Zion.Monitor.load_image t.monitor ~cvm:cid ~gpa data with
            | Ok () -> load rest
            | Error e -> Error (Zion.Ecall.error_to_string e)
          end
      in
      (match load image with
      | Error e -> abort e
      | Ok () -> begin
          match Zion.Monitor.finalize_cvm t.monitor ~cvm:cid with
          | Error e -> abort (Zion.Ecall.error_to_string e)
          | Ok _measurement -> begin
              match Shared_map.create ~bus:t.machine.Machine.bus t.mem with
              | Error e -> abort e
              | Ok shared -> begin
                  match
                    Zion.Monitor.install_shared t.monitor ~cvm:cid
                      ~table_pa:(Shared_map.root shared)
                  with
                  | Error e -> abort (Zion.Ecall.error_to_string e)
                  | Ok () ->
                      (* Pre-map the SWIOTLB window (descriptor page +
                         bounce slots), as the guest kernel does at
                         boot, so device DMA never hits an unmapped
                         bounce page. *)
                      let premap_err = ref None in
                      for i = 0 to Guest.Swiotlb.slots do
                        let gpa =
                          Int64.add Guest.Swiotlb.base
                            (Int64.of_int (i * Guest.Swiotlb.slot_size))
                        in
                        match Shared_map.map_fresh shared ~gpa with
                        | Ok _ -> ()
                        | Error e -> premap_err := Some e
                      done;
                      (match !premap_err with
                      | Some e -> abort e
                      | None ->
                          Mmio_emul.set_translate t.devices (fun gpa ->
                              Shared_map.lookup shared ~gpa);
                          Ok { cid; shared })
                end
            end
        end)

type cvm_outcome = C_timer | C_shutdown | C_limit | C_denied | C_error of string

(* How the hypervisor answers [Exit_need_memory]. The non-honest
   policies model a hostile or broken host for the fault-injection
   harness: the registration is silently skipped (deny), skipped for
   the first [n] requests (delay), or short-changed by a block. The
   SM survives all of them — the driver below just retries with
   backoff and eventually gives up. *)

let expand_pool t bytes =
  let round_up b =
    Int64.mul
      (Int64.div (Int64.add b (Int64.sub block_size 1L)) block_size)
      block_size
  in
  let effective =
    match t.expand_policy with
    | Expand_honest -> Some (round_up bytes)
    | Expand_deny -> None
    | Expand_delay n ->
        if n > 0 then begin
          t.expand_policy <- Expand_delay (n - 1);
          None
        end
        else begin
          t.expand_policy <- Expand_honest;
          Some (round_up bytes)
        end
    | Expand_short ->
        let want = Int64.sub (round_up bytes) block_size in
        if Int64.compare want 0L <= 0 then None else Some want
  in
  match effective with
  | None ->
      (* Pretend to comply without registering anything. *)
      if obs t then
        Metrics.Registry.inc
          (Zion.Monitor.registry t.monitor)
          "pool.expand_refused";
      Ok ()
  | Some bytes ->
  let npages = Int64.to_int (Int64.div bytes 4096L) in
  match Host_mem.alloc_pages t.mem ~align:block_size npages with
  | None -> Error "host cannot expand the secure pool"
  | Some base -> begin
      let observing = obs t in
      if observing then
        Metrics.Trace.span_begin (trace t)
          ~args:[ ("bytes", Printf.sprintf "0x%Lx" bytes) ]
          "hyp.expand_pool";
      charge t "expand_host_work" t.cost.Cost.expand_host_work;
      t.expansions <- t.expansions + 1;
      let r =
        match
          Zion.Monitor.register_secure_region t.monitor ~base ~size:bytes
        with
        | Ok _ -> Ok ()
        | Error e -> Error (Zion.Ecall.error_to_string e)
      in
      if observing then begin
        Metrics.Trace.span_end (trace t) "hyp.expand_pool";
        Metrics.Registry.inc
          (Zion.Monitor.registry t.monitor)
          "pool.expansions"
      end;
      r
    end

let reply_mmio t h mmio result =
  if (Zion.Monitor.config t.monitor).Zion.Monitor.shared_vcpu then begin
    match Zion.Monitor.shared_vcpu_of t.monitor ~cvm:h.cid ~vcpu:0 with
    | None -> Error "no shared vcpu"
    | Some sh ->
        sh.Zion.Vcpu.s_data <- result;
        sh.Zion.Vcpu.s_pc_advance <- 4L;
        Ok ()
  end
  else if mmio.Zion.Vcpu.mmio_write then Ok ()
  else begin
    match
      Zion.Monitor.set_vcpu_reg t.monitor ~cvm:h.cid ~vcpu:0
        ~reg:mmio.Zion.Vcpu.mmio_reg result
    with
    | Ok () -> Ok ()
    | Error e -> Error (Zion.Ecall.error_to_string e)
  end

(* ---------- exitless I/O ---------- *)

let ring_gpa = Guest.Swiotlb.ring_gpa

let exitless_guest t h =
  match List.assoc_opt h.cid t.io_bindings with
  | Some b -> Some b.io_guest
  | None -> None

let exitless_host t h =
  match List.assoc_opt h.cid t.io_bindings with
  | Some b -> Some b.io_host
  | None -> None

let exitless_active t h =
  match List.assoc_opt h.cid t.io_bindings with
  | Some b -> Virtio_ring.host_active b.io_host
  | None -> false

let enable_exitless_io t h =
  if List.mem_assoc h.cid t.io_bindings then
    Error "exitless ring already enabled for this CVM"
  else begin
    let mapped =
      match Shared_map.lookup h.shared ~gpa:ring_gpa with
      | Some _ -> Ok ()
      | None -> (
          match Shared_map.map_fresh h.shared ~gpa:ring_gpa with
          | Ok _ -> Ok ()
          | Error e -> Error e)
    in
    match mapped with
    | Error e -> Error e
    | Ok () ->
        let ctx =
          Virtio_ring.make_ctx ~bus:t.machine.Machine.bus
            ~translate:(fun gpa -> Shared_map.lookup h.shared ~gpa)
            ~registry:(Zion.Monitor.registry t.monitor)
            ~cvm:h.cid ~cost:t.cost
            ~charge:(fun cat cycles -> charge t cat cycles)
        in
        let io_guest, io_host = Virtio_ring.create_pair ctx in
        t.io_bindings <- (h.cid, { io_guest; io_host }) :: t.io_bindings;
        Ok io_guest
  end

(* Tear the device association down — not the CVM. The host side stops
   polling, the guest side falls back to exitful kicks (releasing its
   bounce slots exactly once and scrubbing the page), and the ring
   page leaves the shared subtree so nothing stale can be replayed
   into a future ring. *)
let disable_exitless_io t h =
  match List.assoc_opt h.cid t.io_bindings with
  | None -> ()
  | Some b ->
      Virtio_ring.retire b.io_host;
      Virtio_ring.force_fallback b.io_guest;
      Shared_map.unmap h.shared ~gpa:ring_gpa;
      t.io_bindings <- List.remove_assoc h.cid t.io_bindings

(* Host-side polling service for one CVM's ring. The device translate
   hook is per-CVM state, so install it before draining. *)
let service_exitless t h =
  match List.assoc_opt h.cid t.io_bindings with
  | None -> 0
  | Some b ->
      if Virtio_ring.host_active b.io_host then begin
        Mmio_emul.set_translate t.devices (fun gpa ->
            Shared_map.lookup h.shared ~gpa);
        Mmio_emul.service_ring t.devices b.io_host
      end
      else 0

(* Guest-side consume with the degradation policy attached: a ring
   that falls back (strikes exhausted or watchdog stall) is quarantined
   as a device association on the spot. *)
let exitless_poll t h =
  match List.assoc_opt h.cid t.io_bindings with
  | None -> (0, Virtio_ring.V_ok)
  | Some b ->
      let n, verdict = Virtio_ring.consume b.io_guest in
      if Virtio_ring.guest_mode b.io_guest = Virtio_ring.Fallen_back then
        disable_exitless_io t h;
      (n, verdict)

(* Exit_need_memory that an expansion did not actually satisfy (the
   pool gained no block) is retried at most this many times, charging
   an exponentially growing backoff, before the driver gives up. *)
let max_expand_stalls = 5
let expand_backoff_cycles = 1_000

(* Backoff for stall [n]: the exponential base plus a deterministic
   jitter drawn from this instance's PRNG, uniform in [0, base/2).
   Pure exponential backoff keeps a fleet of tenants that stalled on
   the same exhausted pool in lockstep — they all retry at the same
   tick and collide again; the jitter spreads the retries while the
   audited bound (base <= backoff < 1.5 * base per stall) keeps the
   total retry budget predictable. *)
let backoff_with_jitter t stalls =
  let base = expand_backoff_cycles lsl stalls in
  let state, bits = splitmix64 t.backoff_rng in
  t.backoff_rng <- state;
  let jitter =
    Int64.to_int (Int64.rem (Int64.logand bits Int64.max_int)
        (Int64.of_int (base / 2)))
  in
  base + jitter

let run_cvm t h ~hart ~max_steps =
  Mmio_emul.set_translate t.devices (fun gpa ->
      Shared_map.lookup h.shared ~gpa);
  (* Drain any exitless ring before entering the guest: completions
     published while the vCPU was out become visible on this entry
     without any doorbell. *)
  ignore (service_exitless t h : int);
  let rec drive budget stalls =
    if budget <= 0 then C_limit
    else begin
      match
        Zion.Monitor.run_vcpu t.monitor ~hart ~cvm:h.cid ~vcpu:0
          ~max_steps:budget
      with
      | Error Zion.Ecall.Denied -> C_denied
      | Error e -> C_error (Zion.Ecall.error_to_string e)
      | Ok reason -> begin
          match reason with
          | Zion.Monitor.Exit_timer ->
              (* The timer tick doubles as the host's ring-polling
                 beat: requests the guest published exitlessly are
                 serviced here, batched, with one used-index publish
                 per batch. *)
              ignore (service_exitless t h : int);
              C_timer
          | Zion.Monitor.Exit_limit -> C_limit
          | Zion.Monitor.Exit_shutdown -> C_shutdown
          | Zion.Monitor.Exit_error e -> C_error e
          | Zion.Monitor.Exit_mmio mmio -> begin
              let result = Mmio_emul.handle t.devices mmio in
              t.mmio_serviced <- t.mmio_serviced + 1;
              if obs t then begin
                Metrics.Trace.instant (trace t) ~cvm:h.cid
                  ~args:
                    [
                      ("gpa", Printf.sprintf "0x%Lx" mmio.Zion.Vcpu.mmio_gpa);
                      ("write", string_of_bool mmio.Zion.Vcpu.mmio_write);
                    ]
                  "hyp.mmio_service";
                Metrics.Registry.inc
                  (Zion.Monitor.registry t.monitor)
                  ~scope:(Metrics.Registry.Cvm h.cid) "mmio.serviced"
              end;
              match reply_mmio t h mmio result with
              | Ok () -> drive (budget - 1) 0
              | Error e -> C_error e
            end
          | Zion.Monitor.Exit_shared_fault gpa -> begin
              match
                Shared_map.map_fresh h.shared
                  ~gpa:(Xword.align_down gpa 4096L)
              with
              | Ok _ -> drive (budget - 1) 0
              | Error e -> C_error e
            end
          | Zion.Monitor.Exit_need_memory { bytes } -> begin
              let sm = Zion.Monitor.secmem t.monitor in
              let free_before = Zion.Secmem.free_blocks sm in
              match expand_pool t bytes with
              | Error e -> C_error e
              | Ok () ->
                  if Zion.Secmem.free_blocks sm > free_before then
                    drive (budget - 1) 0
                  else if stalls >= max_expand_stalls then
                    C_error "secure pool expansion stalled; giving up"
                  else begin
                    t.expand_stalls <- t.expand_stalls + 1;
                    charge t "expand_backoff" (backoff_with_jitter t stalls);
                    drive (budget - 1) (stalls + 1)
                  end
            end
        end
    end
  in
  drive max_steps 0

let run_cvm_to_completion t h ~hart ~quantum ~max_slices =
  let clint = Bus.clint t.machine.Machine.bus in
  let hart_obj = t.machine.Machine.harts.(hart) in
  hart_obj.Hart.csr.Csr.mie <-
    Int64.logor hart_obj.Hart.csr.Csr.mie (Int64.shift_left 1L 7);
  let rec go slice =
    if slice >= max_slices then C_limit
    else begin
      Clint.set_mtimecmp clint hart
        (Int64.of_int (Metrics.Ledger.now (ledger t) + quantum));
      match run_cvm t h ~hart ~max_steps:10_000_000 with
      | C_timer -> go (slice + 1)
      | other -> other
    end
  in
  go 0

let mmio_exits_serviced t = t.mmio_serviced
let expansions t = t.expansions
let expand_stalls t = t.expand_stalls

(* ---------- attested inter-CVM channels (host relay) ---------- *)

(* The host's only legitimate role in a channel handshake: relay the
   SM-signed reports between the two tenants and refuse to proceed when
   either fails verification. The SM enforces this independently (the
   mapping only goes live at chan_accept, which re-checks measurements
   and epochs), so a hostile host skipping these checks gains nothing —
   but an honest driver models the verify-before-live discipline the
   guests themselves would follow. *)
let verify_peer_report r ~expect_meas ~expect_nonce =
  if not (Zion.Attest.verify_report r) then Error "report MAC invalid"
  else if not (Zion.Attest.constant_time_eq r.Zion.Attest.measurement expect_meas)
  then Error "peer measurement mismatch"
  else if not (Zion.Attest.constant_time_eq r.Zion.Attest.nonce expect_nonce)
  then Error "stale report (nonce mismatch)"
  else Ok ()

let connect_channel t ha hb ~nonce_a ~nonce_b =
  let mon = t.monitor in
  let a = cvm_id ha and b = cvm_id hb in
  let meas id = Zion.Monitor.cvm_measurement mon ~cvm:id in
  match (meas a, meas b) with
  | None, _ | _, None -> Error "connect_channel: unmeasured endpoint"
  | Some ma, Some mb -> (
      match Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:nonce_a ~expect:mb with
      | Error e ->
          Error ("connect_channel grant: " ^ Zion.Ecall.error_to_string e)
      | Ok (chan, rb) -> (
          match verify_peer_report rb ~expect_meas:mb ~expect_nonce:nonce_a with
          | Error why ->
              ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:a);
              Error ("connect_channel: B's report rejected: " ^ why)
          | Ok () -> (
              match
                Zion.Monitor.chan_accept mon ~chan ~cvm:b ~nonce:nonce_b
                  ~expect:ma
              with
              | Error e ->
                  ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:a);
                  Error
                    ("connect_channel accept: " ^ Zion.Ecall.error_to_string e)
              | Ok ra -> (
                  match
                    verify_peer_report ra ~expect_meas:ma ~expect_nonce:nonce_b
                  with
                  | Error why ->
                      ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:b);
                      Error ("connect_channel: A's report rejected: " ^ why)
                  | Ok () -> Ok chan))))
