(* Deterministic lossy channel: the untrusted courier between two
   migration endpoints. Seeded splitmix64 drives every fault decision,
   so a (seed, faults) pair replays the exact same delivery schedule —
   the property the crash-at-every-step sweep and the CI smoke test
   depend on. *)

type rng = { mutable s : int64 }

let mk_rng seed = { s = Int64.of_int seed }

let next_u64 r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int r n =
  if n <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.logand (next_u64 r) Int64.max_int) (Int64.of_int n))

(* probability p in [0,1], decided at per-mille resolution *)
let flip r p = rand_int r 1000 < int_of_float (p *. 1000.0 +. 0.5)

type faults = {
  drop : float;  (** per-message drop probability *)
  dup : float;  (** per-message duplication probability *)
  reorder : float;  (** probability a message is held back one slot *)
  corrupt : float;  (** per-message byte-corruption probability *)
  delay_max : int;  (** extra delivery delay, uniform in [0, delay_max] *)
  partition : (int * int) list;
      (** [(from, upto)] tick windows during which every send is lost *)
}

let no_faults =
  { drop = 0.0; dup = 0.0; reorder = 0.0; corrupt = 0.0; delay_max = 0;
    partition = [] }

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable partitioned : int;
}

type t = {
  rng : rng;
  faults : faults;
  mutable now : int;
  mutable queue : (int * string) list;  (* (deliver_at, message) *)
  stats : stats;
}

let create ?(faults = no_faults) ~seed () =
  {
    rng = mk_rng seed;
    faults;
    now = 0;
    queue = [];
    stats =
      {
        sent = 0;
        delivered = 0;
        dropped = 0;
        duplicated = 0;
        reordered = 0;
        corrupted = 0;
        partitioned = 0;
      };
  }

let stats t = t.stats
let now t = t.now

let in_partition t =
  List.exists (fun (a, b) -> t.now >= a && t.now <= b) t.faults.partition

let corrupt_msg t msg =
  if String.length msg = 0 then msg
  else begin
    let b = Bytes.of_string msg in
    let n = 1 + rand_int t.rng 3 in
    for _ = 1 to n do
      let i = rand_int t.rng (Bytes.length b) in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 + rand_int t.rng 255)))
    done;
    Bytes.to_string b
  end

let enqueue t msg extra_delay =
  let delay =
    1 + extra_delay
    + (if t.faults.delay_max > 0 then rand_int t.rng (t.faults.delay_max + 1)
       else 0)
  in
  t.queue <- t.queue @ [ (t.now + delay, msg) ]

let send t msg =
  let f = t.faults in
  t.stats.sent <- t.stats.sent + 1;
  if in_partition t then t.stats.partitioned <- t.stats.partitioned + 1
  else if flip t.rng f.drop then t.stats.dropped <- t.stats.dropped + 1
  else begin
    let msg =
      if flip t.rng f.corrupt then begin
        t.stats.corrupted <- t.stats.corrupted + 1;
        corrupt_msg t msg
      end
      else msg
    in
    let held =
      if flip t.rng f.reorder then begin
        t.stats.reordered <- t.stats.reordered + 1;
        1 + rand_int t.rng 3
      end
      else 0
    in
    enqueue t msg held;
    if flip t.rng f.dup then begin
      t.stats.duplicated <- t.stats.duplicated + 1;
      enqueue t msg (rand_int t.rng 3)
    end
  end

(* Advance the clock and return everything whose delivery time arrived,
   in queue order. *)
let tick t =
  t.now <- t.now + 1;
  let ready, later = List.partition (fun (at, _) -> at <= t.now) t.queue in
  t.queue <- later;
  let msgs = List.map snd ready in
  t.stats.delivered <- t.stats.delivered + List.length msgs;
  msgs

let pending t = List.length t.queue

let pp_stats ppf s =
  Format.fprintf ppf
    "sent %d delivered %d dropped %d dup %d reorder %d corrupt %d partitioned %d"
    s.sent s.delivered s.dropped s.duplicated s.reordered s.corrupted
    s.partitioned
