(** Malicious-hypervisor behaviours, packaged for the threat-model test
    suite. Every function attempts an attack the paper's design must
    stop and reports what happened; the tests assert the architectural
    defence (PMP fault, IOPMP fault, Check-after-Load rejection, SM
    validation) fired. *)

type outcome =
  | Blocked of string  (** the defence that stopped it *)
  | Leaked of string  (** attack succeeded — a test failure *)

val read_secure_memory : Riscv.Machine.t -> pool_pa:int64 -> outcome
(** HS-mode load from the secure pool; must die on PMP. *)

val write_secure_memory : Riscv.Machine.t -> pool_pa:int64 -> outcome

val dma_into_pool : Riscv.Machine.t -> pool_pa:int64 -> outcome
(** Device-initiated write; must die on IOPMP. *)

val tamper_mmio_reply_register :
  Zion.Monitor.t -> cvm:int -> outcome
(** Redirect a pending MMIO load's destination register in the shared
    vCPU, then resume; the SM's Check-after-Load must refuse. *)

val tamper_mmio_pc_advance : Zion.Monitor.t -> cvm:int -> outcome
(** Set a bogus pc advance in the shared vCPU. *)

val map_foreign_secure_page :
  Zion.Monitor.t -> Shared_map.t -> victim_page:int64 -> gpa:int64 -> outcome
(** Point a shared-subtree PTE at another CVM's secure page. Caught by
    the SM's entry validation when enabled; otherwise the device DMA
    path still dies on the IOPMP. *)

val steal_vcpu_state : Zion.Monitor.t -> cvm:int -> outcome
(** Try to read a guest register through the SM-mediated interface with
    no pending exit. *)

(** {2 Hostile-ring attacks}

    Ring-poison vectors against the exitless virtio ring: each arms a
    live ring on the CVM (enabling exitless I/O if needed), publishes
    a legitimate request, flips one host-writable field the way a
    Byzantine host would, and drives the service/consume loop. The
    expected defence is always the same: Check-after-Load strikes
    degrade the ring to the exitful MMIO kick path (quarantining the
    device association, never the CVM) with [Zion.Monitor.audit] still
    clean — any other ending is reported as [Leaked]. *)

val ring_poison_desc_gpa : Kvm.t -> Kvm.cvm_handle -> outcome
(** Redirect an in-flight descriptor's buffer GPA out of the shared
    window. *)

val ring_poison_desc_len : Kvm.t -> Kvm.cvm_handle -> outcome
(** Inflate an in-flight descriptor's length past the bounce slot. *)

val ring_used_rewind : Kvm.t -> Kvm.cvm_handle -> outcome
(** Pull the used index backwards after an honest completion. *)

val ring_used_replay : Kvm.t -> Kvm.cvm_handle -> outcome
(** Re-deliver a retired completion under a bumped used index. *)

val ring_used_dup_in_batch : Kvm.t -> Kvm.cvm_handle -> outcome
(** Duplicate a live descriptor id across two used entries published
    under one used-index bump — the in-batch replay that a per-entry
    shadow lookup alone cannot see. *)

val ring_avail_runaway : Kvm.t -> Kvm.cvm_handle -> outcome
(** Run the avail index far past everything published (wrap flood);
    the host clamps, the guest sees phantom completions. *)

(** {2 Hostile-peer channel attacks}

    Vectors against the attested inter-CVM channel ([Zion.Monitor]'s
    [chan_*] interface). The expected defence mirrors the hostile-ring
    story: Check-after-Load strikes degrade the {e channel} (scrubbed
    ring, both mappings gone, precise shootdown) while the endpoint
    CVMs stay out of quarantine — plus the attestation checks that stop
    a mapping from ever going live against a stale or dead peer. *)

val chan_poison_seq : Kvm.t -> Kvm.cvm_handle -> Kvm.cvm_handle -> outcome
(** Scribble a runaway sequence number into a live ring header; polls
    must strike the channel out, never the endpoints. *)

val chan_map_ring : Kvm.t -> Kvm.cvm_handle -> Kvm.cvm_handle -> outcome
(** Alias the live channel ring into an endpoint's shared (host-
    writable) subtree; the SM entry sweep must quarantine the aliasing
    CVM and the quarantine must sweep the channel. *)

val chan_accept_stale_epoch :
  Kvm.t -> Kvm.cvm_handle -> Kvm.cvm_handle -> outcome
(** Bump the acceptor's lifecycle epoch (migration lock/abort) between
    offer and accept; the accept must be [Denied]. *)

val chan_peer_destroyed_mid_accept :
  Kvm.t -> Kvm.cvm_handle -> Kvm.cvm_handle -> outcome
(** Destroy the grantor between offer and accept; the accept must find
    the channel dead and install nothing. *)

val chan_quarantined_peer :
  Kvm.t -> Kvm.cvm_handle -> Kvm.cvm_handle -> outcome
(** Quarantine one endpoint of an Established channel; the implicit
    revoke must scrub and unmap both halves while the other endpoint
    keeps running. *)
