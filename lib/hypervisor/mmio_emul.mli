(** QEMU-side MMIO dispatch for the guest's virtio window.

    Slots within the 4 KiB window at [Zion.Layout.virtio_mmio_gpa]:
    - [0x000 .. 0x0ff] : virtio-blk
    - [0x100 .. 0x1ff] : virtio-net *)

type t

val blk_slot : int64
val net_slot : int64

val create : bus:Riscv.Bus.t -> disk_sectors:int -> t
val blk : t -> Virtio_blk.t
val net : t -> Virtio_net.t

val set_translate : t -> (int64 -> int64 option) -> unit
(** Propagate the GPA→PA translation to both devices. *)

val set_trace : t -> Metrics.Trace.t -> unit
(** Attach the platform flight recorder to both devices. *)

val handle : t -> Zion.Vcpu.mmio -> int64
(** Emulate one trapped access; returns the load result (0 for
    writes). *)

val service_ring : t -> Virtio_ring.host -> int
(** Drain one exitless ring through the same blk/net devices the MMIO
    kicks use; returns completions written. *)
