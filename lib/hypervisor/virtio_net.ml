open Riscv

let sid = 4

type t = {
  bus : Bus.t;
  mutable translate : int64 -> int64 option;
  mutable peer : string -> string option;
  mutable tx_desc_gpa : int64;
  mutable rx_buf_gpa : int64;
  mutable last_rx_len : int64;
  rx : string Queue.t;
  mutable tx : string list; (* newest first *)
  mutable trace : Metrics.Trace.t option;
}

let create ~bus =
  {
    bus;
    translate = (fun _ -> None);
    peer = (fun _ -> None);
    tx_desc_gpa = 0L;
    rx_buf_gpa = 0L;
    last_rx_len = 0L;
    rx = Queue.create ();
    tx = [];
    trace = None;
  }

let set_translate t f = t.translate <- f
let set_trace t tr = t.trace <- Some tr

let obs t =
  match t.trace with
  | Some tr when Metrics.Trace.is_enabled tr -> Some tr
  | _ -> None
let set_peer t f = t.peer <- f
let inject_rx t pkt = Queue.add pkt t.rx

let dma_read_gpa t gpa len =
  let buf = Buffer.create len in
  let rec go off =
    if off >= len then Some (Buffer.contents buf)
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match t.translate g with
      | None -> None
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Buffer.add_string buf (Bus.dma_read t.bus ~sid pa chunk);
          go (off + chunk)
    end
  in
  go 0

let dma_write_gpa t gpa data =
  let len = String.length data in
  let rec go off =
    if off >= len then true
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match t.translate g with
      | None -> false
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Bus.dma_write t.bus ~sid pa (String.sub data off chunk);
          go (off + chunk)
    end
  in
  go 0

let le_u64 s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

(* TX events are instants, not a B/E span: the peer callback is where
   the workload layer retires one request's span context and installs
   the next one on the shared trace, so a span opened before [peer]
   would close under a different context than it opened with.
   "net.tx" carries the retiring request's context, "net.tx_complete"
   the newly installed one. *)
let do_tx t =
  match dma_read_gpa t t.tx_desc_gpa 16 with
  | None -> ()
  | Some desc ->
      let len = Int64.to_int (Int64.logand (le_u64 desc 0) 0xFFFFFFFFL) in
      let data_gpa = le_u64 desc 8 in
      if len >= 0 && len <= 65536 then begin
        match dma_read_gpa t data_gpa len with
        | None -> ()
        | Some pkt -> begin
            t.tx <- pkt :: t.tx;
            (match obs t with
            | Some tr ->
                Metrics.Trace.instant tr
                  ~args:[ ("len", string_of_int len) ]
                  "net.tx"
            | None -> ());
            (match t.peer pkt with
            | Some reply -> Queue.add reply t.rx
            | None -> ());
            match obs t with
            | Some tr ->
                Metrics.Trace.instant tr
                  ~args:[ ("rx_queued", string_of_int (Queue.length t.rx)) ]
                  "net.tx_complete"
            | None -> ()
          end
      end

let do_rx_fill t =
  let tr = obs t in
  (match tr with
  | Some tr -> Metrics.Trace.span_begin tr "net.rx_fill"
  | None -> ());
  (if Queue.is_empty t.rx then t.last_rx_len <- 0L
   else begin
     let pkt = Queue.pop t.rx in
     if dma_write_gpa t t.rx_buf_gpa pkt then begin
       t.last_rx_len <- Int64.of_int (String.length pkt);
       match tr with
       | Some tr ->
           Metrics.Trace.instant tr
             ~args:[ ("len", string_of_int (String.length pkt)) ]
             "net.rx_complete"
       | None -> ()
     end
     else t.last_rx_len <- 0L
   end);
  match tr with
  | Some tr ->
      Metrics.Trace.span_end tr
        ~args:[ ("len", Int64.to_string t.last_rx_len) ]
        "net.rx_fill"
  | None -> ()

(* Non-MMIO service entries for the exitless ring; the TX side runs the
   same peer callback as [do_tx] so replies land on the RX queue. May
   raise [Bus.Fault] from IOPMP-checked DMA. *)
let serve_ring_tx t ~data_gpa ~len =
  if len < 0 || len > 65536 then Error "net.len"
  else
    match dma_read_gpa t data_gpa len with
    | None -> Error "net.dma"
    | Some pkt ->
        t.tx <- pkt :: t.tx;
        (match t.peer pkt with
        | Some reply -> Queue.add reply t.rx
        | None -> ());
        Ok len

let serve_ring_rx t ~data_gpa ~len =
  if Queue.is_empty t.rx then Ok 0
  else begin
    let pkt = Queue.peek t.rx in
    let n = String.length pkt in
    if n > len then Error "net.rx_overflow"
    else if dma_write_gpa t data_gpa pkt then begin
      ignore (Queue.pop t.rx);
      Ok n
    end
    else Error "net.dma"
  end

let mmio_read t off _len =
  match Int64.to_int off with 0x10 -> t.last_rx_len | _ -> 0L

let mmio_write t off _len v =
  match Int64.to_int off with
  | 0x00 -> t.tx_desc_gpa <- v
  | 0x08 -> if v = 1L then do_tx t else if v = 2L then do_rx_fill t
  | 0x18 -> t.rx_buf_gpa <- v
  | _ -> ()

let tx_packets t = List.rev t.tx
let tx_count t = List.length t.tx
let rx_pending t = Queue.length t.rx
