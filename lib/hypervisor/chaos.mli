(** Hostile-host fault injection (the fuzzing hypervisor).

    A seeded, deterministic chaos engine that plays the paper's threat
    model against a live Secure Monitor: randomized host-interface
    calls with adversarial arguments, shared-vCPU reply tampering,
    hostile shared-subtree planting, dishonest answers to the
    slow-path [Exit_need_memory] protocol, attested inter-CVM channel
    handshakes with ring-header poisoning and adversarial-argument
    channel calls, and full protocol migrations to a second platform
    over a lossy channel with random fault rates and injected endpoint
    crashes ({!Migrator}) — interleaved with legitimate guest work so
    the attacks land on realistic state.

    The engine checks three survivability properties and reports them:

    - no exception ever escapes a host-interface call (the typed error
      ABI is total);
    - [Zion.Monitor.audit] finds no invariant violation after any
      injected fault;
    - every CVM the SM quarantines can still be destroyed, with all
      its secure blocks returning to the pool;
    - every migration, however faulty the channel and whenever either
      endpoint crashed, terminates with exactly one owner
      ({!Migrator.handoff_clean}) and both monitors audit clean. *)

type report = {
  iterations : int;
  calls : int;  (** host-interface calls issued *)
  ok_calls : int;
  error_calls : (string * int) list;  (** error label -> count *)
  uncaught : int;  (** exceptions that escaped the host ABI; must be 0 *)
  audits : int;
  violations : string list;  (** distinct audit findings; must be [] *)
  quarantines : int;  (** CVMs the SM quarantined *)
  quarantines_reclaimed : int;  (** quarantined CVMs destroyed + reclaimed *)
  cvms_created : int;
  cvms_destroyed : int;
  migrations : int;  (** protocol migrations attempted (lossy + crashy) *)
  migrations_committed : int;
  migrations_aborted : int;
  ring_poisons : int;  (** hostile pokes at live exitless rings *)
  ring_fallbacks : int;  (** rings CAL degraded to exitful kicks *)
  chan_opens : int;  (** attested inter-CVM channels established *)
  chan_poisons : int;  (** hostile pokes at live channel ring headers *)
  chan_degradations : int;  (** channels CAL degraded (strike budget) *)
  pool_clean : bool;  (** all blocks free and list well-formed at the end *)
}

val survived : report -> bool
(** No uncaught exception, no audit violation, every quarantined CVM
    reclaimed, and the pool fully recovered. *)

val pp_report : Format.formatter -> report -> unit

val run :
  ?dram_mib:int ->
  ?pool_mib:int ->
  ?nharts:int ->
  ?tlb_retention:bool ->
  ?channels:bool ->
  seed:int ->
  iters:int ->
  unit ->
  report
(** Build a fresh machine/monitor/KVM stack and run [iters] fuzzing
    iterations from [seed]. Same seed, same build — same sequence:
    failures are replayable. [tlb_retention] turns on the VMID-tagged
    world-switch fast path, putting the precise-shootdown machinery
    (and the audit's TLB-coherence section) under fire. [channels]
    (default [true]) mixes in the inter-CVM channel actions: attested
    open, ring-header poison (must degrade the channel, never the
    endpoints), and adversarial-argument channel calls. *)

(** {2 SM-crash sweeps}

    The crash-consistency counterpart to the hostile-host fuzzer: kill
    the Secure Monitor at {e every} write-ahead-journal point of every
    journaled operation (create, load, expand, relinquish, destroy,
    quarantine, import, all six migration-session calls, and every
    channel transition — grant, accept, revoke, strike-budget
    degradation, and the implicit revocations on endpoint destroy,
    quarantine and migrate-out commit), model the
    reboot with [Zion.Monitor.crash_reboot], run
    [Zion.Monitor.recover], and demand convergence — a clean audit, an
    idempotent second recovery, and a world that still tears down to an
    all-free pool. The schedule is exhaustive, not sampled, so the
    sweep is deterministic and needs no seed. *)

type sm_report = {
  sm_ops : (string * int) list;
      (** operation -> journal points crash-tested *)
  sm_cases : int;
  sm_crashes : int;  (** crashes injected (op + nested recovery) *)
  sm_recoveries : int;
  sm_rolled_forward : int;
  sm_rolled_back : int;
  sm_failures : string list;  (** distinct convergence failures; must be [] *)
}

val sm_survived : sm_report -> bool
val pp_sm_report : Format.formatter -> sm_report -> unit

val sm_crash_sweep :
  ?recovery_crashes:bool -> ?max_points:int -> unit -> sm_report
(** Run the full sweep. [recovery_crashes] (default [true]) also
    crashes each recovery at successively later journal points until
    one run completes, exercising recover-after-recover-crash;
    [max_points] (default 64) bounds the per-operation sweep in case a
    regression makes an operation journal unboundedly. *)
