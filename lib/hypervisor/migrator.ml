(* Drives one crash-safe migration between two monitors over a pair of
   lossy channels, with optional crash injection at a chosen protocol
   step on either end. This is the harness half of the protocol: the
   endpoints (Zion.Migrate_proto) never see the channels or the crash
   schedule, exactly as a real courier process would be outside them. *)

module Mp = Zion.Migrate_proto

type side = Source | Dest

let side_to_string = function Source -> "source" | Dest -> "dest"

type crash = { at : int; side : side }

type outcome =
  | Committed of int  (* destination CVM id *)
  | Aborted of string

type stats = {
  ticks : int;
  src_events : int;
  dst_events : int;
  chunks_sent : int;
  retransmits : int;
  chunks_recv : int;
  dup_chunks : int;
  rejected : int;
  crashes : int;
  recoveries : int;
  fwd : Channel.stats;  (* source -> dest *)
  rev : Channel.stats;  (* dest -> source *)
}

let pp_stats ppf s =
  Format.fprintf ppf
    "ticks %d; src events %d, dst events %d; chunks sent %d (retx %d), recv \
     %d (dup %d), rejected %d; crashes %d, recoveries %d@\n\
     fwd: %a@\nrev: %a"
    s.ticks s.src_events s.dst_events s.chunks_sent s.retransmits
    s.chunks_recv s.dup_chunks s.rejected s.crashes s.recoveries
    Channel.pp_stats s.fwd Channel.pp_stats s.rev

(* Ground truth for the exactly-one-owner invariant, read from the
   monitors (never from the endpoints): does each side hold a usable —
   current or future-runnable — instance of the guest? *)
let owners ~src ~dst ~cvm ~session =
  let source_owns =
    match Zion.Monitor.cvm_state src ~cvm with
    | Some
        ( Zion.Cvm.Created | Zion.Cvm.Runnable | Zion.Cvm.Running
        | Zion.Cvm.Suspended | Zion.Cvm.Migrating_out ) ->
        (* Migrating_out counts: the lock is resumable via abort *)
        true
    | Some (Zion.Cvm.Migrating_in | Zion.Cvm.Quarantined | Zion.Cvm.Destroyed)
    | None ->
        false
  in
  let dest_owns =
    match Zion.Monitor.migrate_session dst ~role:`In ~session with
    | Some { Zion.Monitor.mi_phase = `Committed; mi_cvm = Some id; _ } -> (
        match Zion.Monitor.cvm_state dst ~cvm:id with
        | Some
            ( Zion.Cvm.Runnable | Zion.Cvm.Running | Zion.Cvm.Suspended
            | Zion.Cvm.Migrating_out ) ->
            true
        | _ -> false)
    | _ -> false
  in
  (source_owns, dest_owns)

(* The sweep's stronger post-condition: besides exactly one owner, the
   losing side must hold nothing live for this migration. *)
let handoff_clean ~src ~dst ~cvm ~session =
  match owners ~src ~dst ~cvm ~session with
  | true, true -> Error "both sides own the guest"
  | false, false -> Error "neither side owns the guest"
  | true, false -> (
      (* aborted handoff: any prepared destination instance must be gone *)
      match Zion.Monitor.migrate_session dst ~role:`In ~session with
      | Some { Zion.Monitor.mi_cvm = Some id; mi_phase; _ }
        when mi_phase <> `Committed -> (
          match Zion.Monitor.cvm_state dst ~cvm:id with
          | Some Zion.Cvm.Destroyed | None -> Ok `Source
          | Some st ->
              Error
                (Printf.sprintf "source owns but dest CVM %d is %s" id
                   (Zion.Cvm.state_to_string st)))
      | _ -> Ok `Source)
  | false, true -> (
      (* committed handoff: the source instance must be scrubbed *)
      match Zion.Monitor.cvm_state src ~cvm with
      | Some Zion.Cvm.Destroyed | None -> Ok `Dest
      | Some st ->
          Error
            (Printf.sprintf "dest owns but source CVM %d is %s" cvm
               (Zion.Cvm.state_to_string st)))

let run ?(config = Mp.default_config) ?(faults = Channel.no_faults) ?(seed = 1)
    ?crash ?(recover_after = 5) ?(max_ticks = 20_000) ?(grace = 200) ~src ~dst
    ~cvm ~session () =
  match Mp.source_start ~config src ~cvm ~session with
  | Error e -> Error ("source_start: " ^ Zion.Ecall.error_to_string e)
  | Ok s0 ->
      let fwd = Channel.create ~faults ~seed () in
      let rev = Channel.create ~faults ~seed:(seed + 0x5eed) () in
      let source = ref (Some s0) in
      let dest = ref (Some (Mp.dest_create ~config dst ~session)) in
      let crashes = ref 0 in
      let recoveries = ref 0 in
      let src_recover_at = ref (-1) in
      let dst_recover_at = ref (-1) in
      let crash_pending = ref crash in
      (* last observed endpoint stats, so a crash doesn't zero them *)
      let s_sent = ref 0 and s_retx = ref 0 and s_rej = ref 0 in
      let s_events = ref 0 and d_events = ref 0 in
      let d_recv = ref 0 and d_dup = ref 0 and d_rej = ref 0 in
      let base_s_sent = ref 0 and base_s_retx = ref 0 and base_s_rej = ref 0 in
      let base_d_recv = ref 0 and base_d_dup = ref 0 and base_d_rej = ref 0 in
      let base_s_events = ref 0 and base_d_events = ref 0 in
      let snap_source s =
        let sent, retx, rej = Mp.source_stats s in
        s_sent := !base_s_sent + sent;
        s_retx := !base_s_retx + retx;
        s_rej := !base_s_rej + rej;
        s_events := !base_s_events + Mp.source_events s
      in
      let snap_dest d =
        let recv, dup, rej = Mp.dest_stats d in
        d_recv := !base_d_recv + recv;
        d_dup := !base_d_dup + dup;
        d_rej := !base_d_rej + rej;
        d_events := !base_d_events + Mp.dest_events d
      in
      let kill side now =
        incr crashes;
        (match side with
        | Source ->
            (match !source with Some s -> snap_source s | None -> ());
            base_s_sent := !s_sent;
            base_s_retx := !s_retx;
            base_s_rej := !s_rej;
            base_s_events := !s_events;
            source := None;
            src_recover_at := now + recover_after
        | Dest ->
            (match !dest with Some d -> snap_dest d | None -> ());
            base_d_recv := !d_recv;
            base_d_dup := !d_dup;
            base_d_rej := !d_rej;
            base_d_events := !d_events;
            dest := None;
            dst_recover_at := now + recover_after);
        crash_pending := None
      in
      let finished = ref None in
      let grace_left = ref grace in
      let tick = ref 0 in
      while !finished = None && !tick < max_ticks do
        incr tick;
        let now = !tick in
        let to_dest = Channel.tick fwd in
        let to_source = Channel.tick rev in
        (* destination first: purely reactive *)
        (match !dest with
        | Some d ->
            let out = Mp.dest_step d ~now ~inbox:to_dest in
            (match !crash_pending with
            | Some { at; side = Dest }
              when !base_d_events + Mp.dest_events d >= at ->
                (* crash swallows the step's unsent replies *)
                kill Dest now
            | _ -> List.iter (Channel.send rev) out);
            (match !dest with Some d -> snap_dest d | None -> ())
        | None ->
            List.iter (fun _ -> ()) to_dest;
            if !dst_recover_at >= 0 && now >= !dst_recover_at then begin
              dest := Some (Mp.dest_recover ~config dst ~session);
              dst_recover_at := -1;
              incr recoveries
            end);
        (match !source with
        | Some s ->
            let out = Mp.source_step s ~now ~inbox:to_source in
            (match !crash_pending with
            | Some { at; side = Source }
              when !base_s_events + Mp.source_events s >= at ->
                kill Source now
            | _ -> List.iter (Channel.send fwd) out);
            (match !source with
            | Some s ->
                snap_source s;
                (match Mp.source_phase s with
                | Mp.S_done ->
                    if !grace_left <= 0 then
                      finished := Some (Ok (Committed 0))
                    else decr grace_left
                | Mp.S_aborted reason ->
                    if !grace_left <= 0 then
                      finished := Some (Ok (Aborted reason))
                    else decr grace_left
                | _ -> ())
            | None -> ())
        | None ->
            List.iter (fun _ -> ()) to_source;
            if !src_recover_at >= 0 && now >= !src_recover_at then begin
              match Mp.source_recover ~config src ~session with
              | Ok s ->
                  source := Some s;
                  src_recover_at := -1;
                  incr recoveries
              | Error e ->
                  finished :=
                    Some
                      (Error
                         ("source_recover: " ^ Zion.Ecall.error_to_string e))
            end)
      done;
      let result =
        match !finished with
        | Some (Error e) -> Error e
        | Some (Ok (Aborted r)) -> Ok (Aborted r)
        | Some (Ok (Committed _)) | None -> (
            (* resolve the destination CVM id (or a stall) from the
               monitors, the only authority *)
            match !finished with
            | None -> Error "migration did not terminate within max_ticks"
            | Some _ -> (
                match
                  Zion.Monitor.migrate_session dst ~role:`In ~session
                with
                | Some { Zion.Monitor.mi_phase = `Committed;
                         mi_cvm = Some id; _ } ->
                    Ok (Committed id)
                | _ -> Error "source done but destination never committed"))
      in
      let stats =
        {
          ticks = !tick;
          src_events = !s_events;
          dst_events = !d_events;
          chunks_sent = !s_sent;
          retransmits = !s_retx;
          chunks_recv = !d_recv;
          dup_chunks = !d_dup;
          rejected = !s_rej + !d_rej;
          crashes = !crashes;
          recoveries = !recoveries;
          fwd = Channel.stats fwd;
          rev = Channel.stats rev;
        }
      in
      Result.map (fun o -> (o, stats)) result
