(* Hostile-host fault injection: a seeded, deterministic fuzzing
   hypervisor that drives randomized ECALL sequences and shared-state
   tampering against a live Secure Monitor, auditing the global
   invariants after every injected fault. See DESIGN.md, "Fault model
   & SM survivability". *)

open Riscv

(* ---------- deterministic PRNG (splitmix64) ---------- *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int seed }

let next_u64 r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform int in [0, n). *)
let rand_int r n =
  if n <= 0 then 0
  else
    Int64.to_int (Int64.rem (Int64.logand (next_u64 r) Int64.max_int)
                    (Int64.of_int n))

let rand_i64 r = next_u64 r
let one_of r l = List.nth l (rand_int r (List.length l))

(* ---------- report ---------- *)

type report = {
  iterations : int;
  calls : int;  (** host-interface calls issued *)
  ok_calls : int;
  error_calls : (string * int) list;  (** error label -> count *)
  uncaught : int;  (** exceptions that escaped the host ABI; must be 0 *)
  audits : int;
  violations : string list;  (** distinct audit findings; must be [] *)
  quarantines : int;  (** CVMs the SM quarantined *)
  quarantines_reclaimed : int;  (** quarantined CVMs destroyed + reclaimed *)
  cvms_created : int;
  cvms_destroyed : int;
  migrations : int;  (** protocol migrations attempted (lossy + crashy) *)
  migrations_committed : int;
  migrations_aborted : int;
  ring_poisons : int;  (** hostile pokes at live exitless rings *)
  ring_fallbacks : int;  (** rings CAL degraded to exitful kicks *)
  chan_opens : int;  (** attested inter-CVM channels established *)
  chan_poisons : int;  (** hostile pokes at live channel ring headers *)
  chan_degradations : int;  (** channels CAL degraded (strike budget) *)
  pool_clean : bool;  (** all blocks free and list well-formed at the end *)
}

let survived r =
  r.uncaught = 0 && r.violations = [] && r.pool_clean
  && r.quarantines_reclaimed = r.quarantines

let pp_report ppf r =
  let field fmt = Format.fprintf ppf fmt in
  field "chaos: %d iterations, %d host calls (%d ok)@." r.iterations r.calls
    r.ok_calls;
  List.iter
    (fun (label, n) -> field "  error %-16s %d@." label n)
    (List.sort compare r.error_calls);
  field "  uncaught exceptions    %d@." r.uncaught;
  field "  audits run             %d@." r.audits;
  field "  audit violations       %d@." (List.length r.violations);
  List.iter (fun v -> field "    %s@." v) r.violations;
  field "  CVMs created/destroyed %d/%d@." r.cvms_created r.cvms_destroyed;
  field "  migrations c/a/total   %d/%d/%d@." r.migrations_committed
    r.migrations_aborted r.migrations;
  field "  quarantined/reclaimed  %d/%d@." r.quarantines
    r.quarantines_reclaimed;
  field "  ring poisons/fallbacks %d/%d@." r.ring_poisons r.ring_fallbacks;
  field "  chans open/poison/degr %d/%d/%d@." r.chan_opens r.chan_poisons
    r.chan_degradations;
  field "  pool clean at end      %b@." r.pool_clean;
  field "  verdict                %s@."
    (if survived r then "SURVIVED" else "COMPROMISED")

(* ---------- the hostile world ---------- *)

type world = {
  r : rng;
  machine : Machine.t;
  mon : Zion.Monitor.t;
  dst_mon : Zion.Monitor.t;
      (* a second platform, the far end of protocol migrations *)
  kvm : Kvm.t;
  mutable live : Kvm.cvm_handle list;
  mutable orphans : int list;
      (* ids created by raw create_cvm fuzzing, with no Kvm handle *)
  mutable calls : int;
  mutable ok_calls : int;
  errors : (string, int) Hashtbl.t;
  mutable uncaught : int;
  mutable audits : int;
  mutable violations : string list;
  mutable quarantines : int;
  mutable quarantines_reclaimed : int;
  mutable created : int;
  mutable destroyed : int;
  mutable migrations : int;
  mutable mig_committed : int;
  mutable mig_aborted : int;
  mutable session_ctr : int;
  mutable ring_poisons : int;
  mutable ring_fallbacks : int;
  mutable chans : int list;
      (* channel ids the fuzzer established (may have died since) *)
  mutable chan_opens : int;
  mutable chan_poisons : int;
  mutable chan_degradations : int;
}

let guest_entry = 0x10000L

let mib n = Int64.mul (Int64.of_int n) 0x100000L

let registry w = Zion.Monitor.registry w.mon

let count_result w r =
  w.calls <- w.calls + 1;
  match r with
  | Ok _ -> w.ok_calls <- w.ok_calls + 1
  | Error e ->
      let label = Zion.Ecall.error_to_string e in
      Hashtbl.replace w.errors label
        (1 + Option.value ~default:0 (Hashtbl.find_opt w.errors label))

let record_exn w exn =
  w.uncaught <- w.uncaught + 1;
  w.calls <- w.calls + 1;
  Metrics.Registry.inc (registry w) "chaos.uncaught";
  let label = "EXN " ^ Printexc.to_string exn in
  Hashtbl.replace w.errors label
    (1 + Option.value ~default:0 (Hashtbl.find_opt w.errors label))

(* Every monitor call the fuzzer makes goes through here: an exception
   crossing the ABI is exactly what the typed error interface promises
   cannot happen, so it is the headline failure we are hunting. *)
let call : 'a. world -> (unit -> ('a, Zion.Ecall.error) result) -> unit =
 fun w f ->
  match f () with
  | r -> count_result w r
  | exception exn -> record_exn w exn

(* ---------- argument fuzzers ---------- *)

let fuzz_id w =
  match rand_int w.r 5 with
  | 0 when w.live <> [] -> Kvm.cvm_id (one_of w.r w.live)
  | 1 when w.orphans <> [] -> one_of w.r w.orphans
  | 2 -> rand_int w.r 32
  | 3 -> -rand_int w.r 1000
  | _ -> Int64.to_int (Int64.logand (rand_i64 w.r) 0xFFFFFFL)

let fuzz_addr w =
  match rand_int w.r 6 with
  | 0 -> rand_i64 w.r (* wild *)
  | 1 -> Int64.neg (Int64.logand (rand_i64 w.r) 0xFFFF_FFFFL)
  | 2 -> Int64.add Bus.dram_base (Int64.logand (rand_i64 w.r) 0xFFF_FFFFL)
  | 3 -> Int64.logor (Int64.logand (rand_i64 w.r) 0xFFFF_FFFFL) 1L
  | 4 -> 0L
  | _ -> Int64.logand (rand_i64 w.r) 0x7FFF_FFFF_FFFF_FFFFL

let fuzz_string w =
  let n = rand_int w.r 600 in
  String.init n (fun _ -> Char.chr (rand_int w.r 256))

(* Session ids for migration fuzzing: a small pool of valid names (so
   calls sometimes hit a real session and exercise the state checks)
   mixed with empty and garbage strings (which must all bounce). *)
let fuzz_session w =
  match rand_int w.r 4 with
  | 0 | 1 -> "s" ^ string_of_int (rand_int w.r 4)
  | 2 -> ""
  | _ -> fuzz_string w

(* One randomized call against a randomly chosen host-interface fid.
   register_secure_region only ever sees invalid arguments here: a
   randomly *valid* donation would hand the SM memory the host still
   uses, which is self-sabotage rather than an attack on the SM. *)
let fuzz_ecall w =
  let mon = w.mon in
  match rand_int w.r 15 with
  | 0 ->
      let base = Int64.logor (fuzz_addr w) 1L (* never block-aligned *) in
      call w (fun () ->
          Zion.Monitor.register_secure_region mon ~base
            ~size:(fuzz_addr w))
  | 1 -> (
      let nvcpus = rand_int w.r 200 - 50 and entry_pc = fuzz_addr w in
      match Zion.Monitor.create_cvm mon ~nvcpus ~entry_pc with
      | r ->
          count_result w r;
          (match r with
          | Ok id ->
              w.created <- w.created + 1;
              w.orphans <- id :: w.orphans
          | Error _ -> ())
      | exception exn -> record_exn w exn)
  | 2 ->
      call w (fun () ->
          Zion.Monitor.load_image mon ~cvm:(fuzz_id w) ~gpa:(fuzz_addr w)
            (fuzz_string w))
  | 3 -> call w (fun () -> Zion.Monitor.finalize_cvm mon ~cvm:(fuzz_id w))
  | 4 ->
      (* Misaligned, non-DRAM or secure table roots: all must bounce. *)
      let table_pa =
        match rand_int w.r 3 with
        | 0 -> Int64.logor (fuzz_addr w) 0xFFFL
        | 1 -> Int64.logand (rand_i64 w.r) 0xFFFF_F000L (* below DRAM *)
        | _ -> (
            match Zion.Secmem.regions (Zion.Monitor.secmem mon) with
            | (base, _) :: _ -> base (* inside the pool *)
            | [] -> 0L)
      in
      call w (fun () -> Zion.Monitor.install_shared mon ~cvm:(fuzz_id w) ~table_pa)
  | 5 ->
      call w (fun () ->
          Zion.Monitor.run_vcpu mon
            ~hart:(rand_int w.r 6 - 2)
            ~cvm:(fuzz_id w)
            ~vcpu:(rand_int w.r 6 - 2)
            ~max_steps:(rand_int w.r 2000 - 500))
  | 6 ->
      call w (fun () ->
          Zion.Monitor.get_vcpu_reg mon ~cvm:(fuzz_id w)
            ~vcpu:(rand_int w.r 6 - 2)
            ~reg:(rand_int w.r 40 - 4))
  | 7 ->
      call w (fun () ->
          Zion.Monitor.set_vcpu_reg mon ~cvm:(fuzz_id w)
            ~vcpu:(rand_int w.r 6 - 2)
            ~reg:(rand_int w.r 40 - 4)
            (rand_i64 w.r))
  | 8 -> call w (fun () -> Zion.Monitor.export_cvm mon ~cvm:(fuzz_id w))
  | 9 -> call w (fun () -> Zion.Monitor.import_cvm mon (fuzz_string w))
  | 10 ->
      (* A hostile host opening migration sessions on arbitrary ids:
         at worst it parks its own CVM in [Migrating_out] (it could
         equally destroy it), never anyone else's. *)
      call w (fun () ->
          Zion.Monitor.migrate_out_begin mon ~cvm:(fuzz_id w)
            ~session:(fuzz_session w))
  | 11 ->
      let session = fuzz_session w in
      if rand_int w.r 2 = 0 then
        call w (fun () -> Zion.Monitor.migrate_out_abort mon ~session)
      else call w (fun () -> Zion.Monitor.migrate_out_commit mon ~session)
  | 12 ->
      (* Random bytes never carry a valid seal, so prepare must refuse
         without allocating anything. *)
      call w (fun () ->
          Zion.Monitor.migrate_in_prepare mon ~session:(fuzz_session w)
            ~epoch:(rand_int w.r 6 - 2)
            (fuzz_string w))
  | 13 -> (
      let session = fuzz_session w in
      match rand_int w.r 3 with
      | 0 -> call w (fun () -> Zion.Monitor.migrate_in_commit mon ~session)
      | 1 -> call w (fun () -> Zion.Monitor.migrate_in_abort mon ~session)
      | _ ->
          call w (fun () ->
              Zion.Monitor.migrate_note_stalls mon ~session
                (rand_int w.r 50 - 10)))
  | _ ->
      let id = fuzz_id w in
      let was_destroyed =
        Zion.Monitor.cvm_state mon ~cvm:id = Some Zion.Cvm.Destroyed
      in
      call w (fun () -> Zion.Monitor.destroy_cvm mon ~cvm:id);
      if
        (not was_destroyed)
        && Zion.Monitor.cvm_state mon ~cvm:id = Some Zion.Cvm.Destroyed
      then begin
        w.destroyed <- w.destroyed + 1;
        w.orphans <- List.filter (fun o -> o <> id) w.orphans
      end

(* ---------- lifecycle actions ---------- *)

let guest_program w =
  match rand_int w.r 3 with
  | 0 -> Guest.Gprog.hello "c"
  | 1 ->
      Guest.Gprog.touch_pages ~start_gpa:0x200000L
        ~pages:(1 + rand_int w.r 24)
      @ Guest.Gprog.shutdown
  | _ -> Guest.Gprog.blk_read_first_byte ~sector:0 ~len:64 @ Guest.Gprog.shutdown

let forget w h = w.live <- List.filter (fun x -> x != h) w.live

(* Destroy [h] through the SM and drop it from the live set. *)
let destroy w h =
  let id = Kvm.cvm_id h in
  let before = Zion.Monitor.cvm_state w.mon ~cvm:id in
  let was_quarantined = before = Some Zion.Cvm.Quarantined in
  call w (fun () -> Zion.Monitor.destroy_cvm w.mon ~cvm:id);
  if
    before <> Some Zion.Cvm.Destroyed
    && Zion.Monitor.cvm_state w.mon ~cvm:id = Some Zion.Cvm.Destroyed
  then begin
    w.destroyed <- w.destroyed + 1;
    if was_quarantined then begin
      w.quarantines_reclaimed <- w.quarantines_reclaimed + 1;
      Metrics.Registry.inc (registry w) "chaos.quarantine_reclaimed"
    end
  end;
  forget w h

(* Any CVM the SM parked in [Quarantined] must be reclaimable — tear
   it down immediately so its blocks return to the pool. *)
let reap_quarantined w =
  List.iter
    (fun h ->
      if
        Zion.Monitor.cvm_state w.mon ~cvm:(Kvm.cvm_id h)
        = Some Zion.Cvm.Quarantined
      then begin
        w.quarantines <- w.quarantines + 1;
        Metrics.Registry.inc (registry w) "chaos.quarantine";
        destroy w h
      end)
    w.live

let spawn w =
  if List.length w.live < 4 then begin
    match
      Kvm.create_cvm_guest w.kvm ~entry_pc:guest_entry
        ~image:[ (guest_entry, Asm.program (guest_program w)) ]
    with
    | Ok h ->
        w.created <- w.created + 1;
        w.live <- h :: w.live
    | Error _ -> ()
  end

let step w =
  match w.live with
  | [] -> spawn w
  | l -> begin
      let h = one_of w.r l in
      match
        Kvm.run_cvm w.kvm h ~hart:(rand_int w.r 2)
          ~max_steps:(500 + rand_int w.r 5000)
      with
      | Kvm.C_shutdown | Kvm.C_error _ -> destroy w h
      | Kvm.C_denied -> () (* quarantined; the reaper collects it *)
      | Kvm.C_timer | Kvm.C_limit -> ()
      | exception _ ->
          w.uncaught <- w.uncaught + 1;
          Metrics.Registry.inc (registry w) "chaos.uncaught";
          forget w h
    end

(* Corrupt the shared vCPU reply of a pending MMIO exit, then resume:
   Check-after-Load must reject and the SM must quarantine. *)
let tamper_reply w =
  match w.live with
  | [] -> ()
  | l -> (
      let h = one_of w.r l in
      let id = Kvm.cvm_id h in
      match
        Zion.Monitor.run_vcpu w.mon ~hart:0 ~cvm:id ~vcpu:0 ~max_steps:4000
      with
      | Ok (Zion.Monitor.Exit_mmio _) -> (
          (match Zion.Monitor.shared_vcpu_of w.mon ~cvm:id ~vcpu:0 with
          | Some sh -> (
              match rand_int w.r 3 with
              | 0 -> sh.Zion.Vcpu.s_reg_index <- 1 + rand_int w.r 30
              | 1 -> sh.Zion.Vcpu.s_pc_advance <- Int64.of_int (8 + rand_int w.r 4096)
              | _ ->
                  sh.Zion.Vcpu.s_gpa <- fuzz_addr w;
                  sh.Zion.Vcpu.s_pc_advance <- 0L)
          | None -> ());
          call w (fun () ->
              Zion.Monitor.run_vcpu w.mon ~hart:0 ~cvm:id ~vcpu:0
                ~max_steps:100))
      | Ok Zion.Monitor.Exit_shutdown -> destroy w h
      | Ok _ | Error _ -> ()
      | exception _ ->
          w.uncaught <- w.uncaught + 1;
          Metrics.Registry.inc (registry w) "chaos.uncaught")

(* Point a leaf of the CVM's own shared subtree at secure memory, then
   try to enter: the sweep must refuse and quarantine. The CVM is torn
   down in the same iteration so the audit sees the defended state. *)
let tamper_subtree w =
  match (w.live, Zion.Secmem.regions (Zion.Monitor.secmem w.mon)) with
  | h :: _, (pool_base, pool_size) :: _ ->
      let victim =
        Int64.add pool_base
          (Int64.mul 4096L
             (Int64.of_int
                (rand_int w.r (Int64.to_int (Int64.div pool_size 4096L)))))
      in
      let gpa =
        Int64.add Zion.Layout.shared_gpa_base
          (Int64.mul 4096L (Int64.of_int (rand_int w.r 4096)))
      in
      Shared_map.map_secure_page_for_attack (Kvm.cvm_shared_map h) ~gpa
        ~pa:victim;
      call w (fun () ->
          Zion.Monitor.run_vcpu w.mon ~hart:0 ~cvm:(Kvm.cvm_id h) ~vcpu:0
            ~max_steps:100)
  | _ -> ()

(* Hostile pokes at a live exitless ring. Arm a ring on a random CVM
   (or reuse one), publish a legitimate request, flip one host-writable
   field with an adversarial value, and drive the service/consume loop
   bounded by the stall watchdog: Check-after-Load must absorb the
   poison or degrade the association to exitful kicks — never raise.
   Half the time the poke also lands after a fallback (or with no ring
   bound at all), exercising the exitful-mode path where the ring page
   is unmapped and the poke simply misses. *)
let poison_ring w =
  match w.live with
  | [] -> ()
  | l ->
      let h = one_of w.r l in
      (match Kvm.exitless_guest w.kvm h with
      | Some _ -> ()
      | None ->
          if rand_int w.r 2 = 0 then
            ignore (Kvm.enable_exitless_io w.kvm h));
      (match Kvm.exitless_guest w.kvm h with
      | None -> ()
      | Some g -> (
          match
            Virtio_ring.submit g ~op:Guest.Swiotlb.op_blk_write
              ~len:(64 + rand_int w.r 512)
              ~data_gpa:(Guest.Swiotlb.slot_gpa (rand_int w.r 8))
              ~meta:(Int64.of_int (rand_int w.r 64))
              ()
          with
          | Ok _ | Error _ -> ()));
      w.ring_poisons <- w.ring_poisons + 1;
      Metrics.Registry.inc (registry w) "chaos.ring_poison";
      let module Sw = Guest.Swiotlb in
      let off, width =
        match rand_int w.r 8 with
        | 0 -> (Sw.ring_desc_off (rand_int w.r Sw.ring_entries), 8)
        | 1 -> (Sw.ring_desc_off (rand_int w.r Sw.ring_entries) + 8, 4)
        | 2 -> (Sw.ring_desc_off (rand_int w.r Sw.ring_entries) + 12, 4)
        | 3 -> (Sw.ring_desc_off (rand_int w.r Sw.ring_entries) + 16, 8)
        | 4 -> (Sw.ring_avail_idx_off, 4)
        | 5 -> (Sw.ring_avail_entry_off (rand_int w.r Sw.ring_entries), 4)
        | 6 -> (Sw.ring_used_idx_off, 4)
        | _ -> (Sw.ring_used_entry_off (rand_int w.r Sw.ring_entries), 4)
      in
      let v =
        match rand_int w.r 5 with
        | 0 -> 0L
        | 1 -> rand_i64 w.r
        | 2 -> Int64.logand (rand_i64 w.r) 0xFFFFL
        | 3 ->
            (* Near-max sector/len values: device-side offset math must
               reject these without wrapping. *)
            Int64.sub Int64.max_int (Int64.of_int (rand_int w.r 4096))
        | _ -> 0xDEAD_0000L
      in
      let was_active = Kvm.exitless_active w.kvm h in
      (try
         ignore
           (Virtio_ring.poke ~bus:w.machine.Machine.bus
              ~translate:(fun gpa ->
                Shared_map.lookup (Kvm.cvm_shared_map h) ~gpa)
              ~off ~width v
             : bool);
         let n = ref 0 in
         while Kvm.exitless_active w.kvm h && !n <= Virtio_ring.watchdog_polls
         do
           incr n;
           ignore (Kvm.service_exitless w.kvm h : int);
           ignore (Kvm.exitless_poll w.kvm h : int * Virtio_ring.verdict);
           match Kvm.exitless_guest w.kvm h with
           | Some g when Virtio_ring.outstanding g = 0 ->
               n := Virtio_ring.watchdog_polls + 1
           | _ -> ()
         done
       with exn ->
         w.uncaught <- w.uncaught + 1;
         Metrics.Registry.inc (registry w) "chaos.uncaught";
         Hashtbl.replace w.errors
           ("EXN ring " ^ Printexc.to_string exn)
           (1
           + Option.value ~default:0
               (Hashtbl.find_opt w.errors
                  ("EXN ring " ^ Printexc.to_string exn))));
      if was_active && not (Kvm.exitless_active w.kvm h) then begin
        w.ring_fallbacks <- w.ring_fallbacks + 1;
        Metrics.Registry.inc (registry w) "chaos.ring_fallback"
      end

(* ---------- channel actions ---------- *)

(* Open an attested channel between two distinct live CVMs, playing the
   honest relay: forward the grant, verify both reports exactly as the
   guests would (MAC, then the expected measurement in constant time),
   and only then accept. A report that fails verification aborts the
   handshake with a revoke — the mapping must never go live first. *)
let open_channel w =
  let finalized h =
    match Zion.Monitor.cvm_state w.mon ~cvm:(Kvm.cvm_id h) with
    | Some (Zion.Cvm.Runnable | Zion.Cvm.Running | Zion.Cvm.Suspended) -> true
    | _ -> false
  in
  (* The fuzzer's steady-state population hovers around one guest
     (shutdowns destroy them fast), so conjure the second endpoint on
     demand rather than waiting for a lucky census. *)
  if List.length (List.filter finalized w.live) < 2 then spawn w;
  if List.length (List.filter finalized w.live) < 2 then spawn w;
  match List.filter finalized w.live with
  | ha :: hb :: _ -> (
      let a = Kvm.cvm_id ha and b = Kvm.cvm_id hb in
      let meas id = Zion.Monitor.cvm_measurement w.mon ~cvm:id in
      match (meas a, meas b) with
      | Some ma, Some mb -> (
          let nonce =
            Printf.sprintf "chaos-%Ld" (Int64.logand (rand_i64 w.r) 0xFFFFFFL)
          in
          match
            Zion.Monitor.chan_grant w.mon ~cvm:a ~peer:b ~nonce ~expect:mb
          with
          | exception exn -> record_exn w exn
          | Error _ as r -> count_result w r
          | Ok (chan, rb) as r -> (
              count_result w r;
              if
                Zion.Attest.verify_report rb
                && Zion.Attest.constant_time_eq rb.Zion.Attest.measurement mb
              then (
                match
                  Zion.Monitor.chan_accept w.mon ~chan ~cvm:b
                    ~nonce:(nonce ^ "-b") ~expect:ma
                with
                | exception exn -> record_exn w exn
                | Error _ as r -> count_result w r
                | Ok ra as r ->
                    count_result w r;
                    if
                      Zion.Attest.verify_report ra
                      && Zion.Attest.constant_time_eq ra.Zion.Attest.measurement
                           ma
                    then begin
                      w.chan_opens <- w.chan_opens + 1;
                      Metrics.Registry.inc (registry w) "chaos.chan_open";
                      w.chans <- chan :: w.chans
                    end
                    else
                      ignore (Zion.Monitor.chan_revoke w.mon ~chan ~cvm:b))
              else ignore (Zion.Monitor.chan_revoke w.mon ~chan ~cvm:a)))
      | _ -> ())
  | _ -> ()

(* Poison a live channel's directional header straight through physical
   memory (in this model the host can always write secure DRAM — the
   SM's Check-after-Load is the defense, not the medium): the following
   polls must strike the channel and, at the budget, degrade it — the
   channel dies, never the endpoint CVMs, and never with a raise. *)
let chan_poison w =
  let live_chan id =
    match Zion.Monitor.chan_info w.mon ~chan:id with
    | Some ci when ci.Zion.Monitor.ci_phase = "established" -> Some ci
    | _ -> None
  in
  (* Channels rarely outlive their endpoints' next shutdown, so stand
     one up to poison if none survived since the last open. *)
  if List.filter_map live_chan w.chans = [] then open_channel w;
  match List.filter_map live_chan w.chans with
  | [] -> ()
  | cis -> (
      let ci = one_of w.r cis in
      match ci.Zion.Monitor.ci_page with
      | None -> ()
      | Some pa ->
          w.chan_poisons <- w.chan_poisons + 1;
          Metrics.Registry.inc (registry w) "chaos.chan_poison";
          let base =
            if rand_int w.r 2 = 0 then pa
            else Int64.add pa (Int64.of_int Zion.Layout.chan_dir_off)
          in
          let bus = w.machine.Machine.bus in
          (match rand_int w.r 3 with
          | 0 ->
              (* sequence runaway (or rewind, once traffic has flowed) *)
              Bus.write bus base 8 (rand_i64 w.r);
              Bus.write bus (Int64.add base 8L) 8 16L
          | 1 ->
              (* oversized length: must bounce before any copy *)
              Bus.write bus base 8 1L;
              Bus.write bus (Int64.add base 8L) 8
                (Int64.of_int
                   (Zion.Layout.chan_max_msg + 1 + rand_int w.r 8192))
          | _ ->
              (* zero-length "message" *)
              Bus.write bus base 8 1L;
              Bus.write bus (Int64.add base 8L) 8 0L);
          let polls = ref 0 and stop = ref false and degraded = ref false in
          while (not !stop) && !polls <= Zion.Monitor.chan_max_strikes do
            incr polls;
            match Zion.Monitor.chan_poll w.mon ~chan:ci.Zion.Monitor.ci_id with
            | Ok true -> ()
            | Ok false ->
                stop := true;
                degraded := true
            | Error _ -> stop := true
            | exception exn ->
                record_exn w exn;
                stop := true
          done;
          if !degraded then begin
            w.chan_degradations <- w.chan_degradations + 1;
            Metrics.Registry.inc (registry w) "chaos.chan_degrade";
            w.chans <-
              List.filter (fun c -> c <> ci.Zion.Monitor.ci_id) w.chans
          end)

(* Channel calls with adversarial arguments — wrong ids, non-endpoint
   callers, garbage nonces and expected measurements. All must bounce
   with typed errors; a hostile "peer" must never acquire a mapping. *)
let chan_fuzz_ecall w =
  let mon = w.mon in
  let fuzz_chan w =
    match (rand_int w.r 3, w.chans) with
    | 0, c :: _ -> c
    | 1, _ -> rand_int w.r 64
    | _, _ -> -rand_int w.r 1000
  in
  match rand_int w.r 4 with
  | 0 ->
      call w (fun () ->
          Zion.Monitor.chan_grant mon ~cvm:(fuzz_id w) ~peer:(fuzz_id w)
            ~nonce:(fuzz_string w) ~expect:(fuzz_string w))
  | 1 ->
      call w (fun () ->
          Zion.Monitor.chan_accept mon ~chan:(fuzz_chan w) ~cvm:(fuzz_id w)
            ~nonce:(fuzz_string w) ~expect:(fuzz_string w))
  | 2 ->
      call w (fun () ->
          Zion.Monitor.chan_revoke mon ~chan:(fuzz_chan w) ~cvm:(fuzz_id w))
  | _ -> call w (fun () -> Zion.Monitor.chan_poll mon ~chan:(fuzz_chan w))

let flip_expand_policy w =
  Kvm.set_expand_policy w.kvm
    (match rand_int w.r 4 with
    | 0 -> Kvm.Expand_honest
    | 1 -> Kvm.Expand_deny
    | 2 -> Kvm.Expand_delay (1 + rand_int w.r 3)
    | _ -> Kvm.Expand_short)

(* Legitimate export → import → run → destroy round trip. *)
let migrate_roundtrip w =
  match w.live with
  | [] -> ()
  | l -> (
      let h = one_of w.r l in
      match Zion.Monitor.export_cvm w.mon ~cvm:(Kvm.cvm_id h) with
      | Error _ -> ()
      | Ok blob -> (
          count_result w (Ok ());
          let blob =
            (* half the time, flip a byte: import must refuse *)
            if rand_int w.r 2 = 0 then blob
            else begin
              let b = Bytes.of_string blob in
              let i = rand_int w.r (Bytes.length b) in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
              Bytes.to_string b
            end
          in
          match Zion.Monitor.import_cvm w.mon blob with
          | exception _ ->
              w.uncaught <- w.uncaught + 1;
              Metrics.Registry.inc (registry w) "chaos.uncaught"
          | Error _ -> ()
          | Ok id ->
              ignore
                (Zion.Monitor.run_vcpu w.mon ~hart:0 ~cvm:id ~vcpu:0
                   ~max_steps:2000);
              call w (fun () -> Zion.Monitor.destroy_cvm w.mon ~cvm:id)))

(* Full protocol migration to the second platform, over a lossy channel
   with random fault rates and, some of the time, a crash injected on a
   random side at a random step. Whatever happens, the run must reach a
   terminal state with exactly one owner. *)
let proto_migrate w =
  let movable h =
    match Zion.Monitor.cvm_state w.mon ~cvm:(Kvm.cvm_id h) with
    | Some Zion.Cvm.Runnable | Some Zion.Cvm.Suspended -> true
    | _ -> false
  in
  match List.filter movable w.live with
  | [] -> ()
  | candidates ->
      let h = one_of w.r candidates in
      let cvm = Kvm.cvm_id h in
      w.session_ctr <- w.session_ctr + 1;
      let session = Printf.sprintf "chaos-mig-%d" w.session_ctr in
      let pm () = float_of_int (rand_int w.r 200) /. 1000. (* 0..20% *) in
      let faults =
        {
          Channel.no_faults with
          drop = pm ();
          dup = pm ();
          reorder = pm ();
          corrupt = pm ();
          delay_max = rand_int w.r 3;
        }
      in
      let crash =
        if rand_int w.r 3 = 0 then
          Some
            {
              Migrator.at = 1 + rand_int w.r 40;
              side = (if rand_int w.r 2 = 0 then Migrator.Source else Migrator.Dest);
            }
        else None
      in
      let seed = 1 + Int64.to_int (Int64.logand (rand_i64 w.r) 0xFFFFFL) in
      w.migrations <- w.migrations + 1;
      let violation msg =
        let msg = "migration " ^ session ^ ": " ^ msg in
        if not (List.mem msg w.violations) then
          w.violations <- msg :: w.violations
      in
      let check_handoff () =
        (* Whichever way it ended, the handoff must be unambiguous. *)
        match
          Migrator.handoff_clean ~src:w.mon ~dst:w.dst_mon ~cvm ~session
        with
        | Ok _ -> ()
        | Error msg -> violation msg
      in
      (match
         Migrator.run ~faults ~seed ?crash ~src:w.mon ~dst:w.dst_mon ~cvm
           ~session ()
       with
      | Ok (Migrator.Committed id, _) ->
          w.mig_committed <- w.mig_committed + 1;
          check_handoff ();
          (* the source copy was scrubbed at the commit point *)
          w.destroyed <- w.destroyed + 1;
          forget w h;
          (* retire the landed copy so the far pool drains to empty *)
          ignore (Zion.Monitor.destroy_cvm w.dst_mon ~cvm:id)
      | Ok (Migrator.Aborted _, _) ->
          w.mig_aborted <- w.mig_aborted + 1;
          check_handoff ()
      | Error msg -> violation msg
      | exception exn -> record_exn w exn)

let audit_one w mon label =
  match Zion.Monitor.audit mon with
  | Ok _ -> ()
  | Error findings ->
      Metrics.Registry.inc (registry w) "chaos.audit_violation";
      List.iter
        (fun f ->
          let f = label ^ f in
          if not (List.mem f w.violations) then
            w.violations <- f :: w.violations)
        findings
  | exception exn ->
      w.uncaught <- w.uncaught + 1;
      w.violations <-
        (label ^ "audit itself raised: " ^ Printexc.to_string exn)
        :: w.violations

let audit w =
  w.audits <- w.audits + 1;
  audit_one w w.mon "";
  audit_one w w.dst_mon "dst: "

(* ---------- driver ---------- *)

let run ?(dram_mib = 128) ?(pool_mib = 2) ?(nharts = 2)
    ?(tlb_retention = false) ?(channels = true) ~seed ~iters () =
  let r = rng seed in
  let machine = Machine.create ~nharts ~dram_size:(mib dram_mib) () in
  let config =
    {
      Zion.Monitor.default_config with
      validate_shared_on_entry = true;
      tlb_retention;
    }
  in
  let mon = Zion.Monitor.create ~config machine in
  let kvm = Kvm.create ~machine ~monitor:mon () in
  (match Kvm.donate_secure_pool kvm ~mib:pool_mib with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.run: " ^ e));
  (* The far end of protocol migrations: its own machine and monitor,
     with a secure pool carved out of its own DRAM. *)
  let dst_machine = Machine.create ~nharts ~dram_size:(mib dram_mib) () in
  let dst_mon = Zion.Monitor.create dst_machine in
  (match
     Zion.Monitor.register_secure_region dst_mon
       ~base:(Int64.add Bus.dram_base (mib (dram_mib / 2)))
       ~size:(mib pool_mib)
   with
  | Ok _ -> ()
  | Error e ->
      invalid_arg ("Chaos.run (dst): " ^ Zion.Ecall.error_to_string e));
  let w =
    {
      r;
      machine;
      mon;
      dst_mon;
      kvm;
      live = [];
      orphans = [];
      calls = 0;
      ok_calls = 0;
      errors = Hashtbl.create 16;
      uncaught = 0;
      audits = 0;
      violations = [];
      quarantines = 0;
      quarantines_reclaimed = 0;
      created = 0;
      destroyed = 0;
      migrations = 0;
      mig_committed = 0;
      mig_aborted = 0;
      session_ctr = 0;
      ring_poisons = 0;
      ring_fallbacks = 0;
      chans = [];
      chan_opens = 0;
      chan_poisons = 0;
      chan_degradations = 0;
    }
  in
  for i = 1 to iters do
    Metrics.Registry.inc (registry w) "chaos.iterations";
    (match rand_int w.r 100 with
    | n when n < 8 -> spawn w
    | n when n < 38 -> step w
    | n when n < 72 -> fuzz_ecall w
    | n when n < 78 ->
        if not channels then fuzz_ecall w
        else begin
          match rand_int w.r 3 with
          | 0 -> open_channel w
          | 1 -> chan_poison w
          | _ -> chan_fuzz_ecall w
        end
    | n when n < 84 -> tamper_reply w
    | n when n < 89 -> tamper_subtree w
    | n when n < 94 -> poison_ring w
    | n when n < 95 -> flip_expand_policy w
    | n when n < 97 -> migrate_roundtrip w
    | n when n < 99 -> proto_migrate w
    | _ -> ( match w.live with [] -> spawn w | h :: _ -> destroy w h));
    reap_quarantined w;
    (* Audit on a sample of iterations plus always at the end: a full
       sweep every iteration dominates runtime at high iteration
       counts without finding anything a sampled sweep would not. *)
    if i mod 7 = 0 || i = iters then audit w
  done;
  (* Drain: every remaining CVM must tear down cleanly. *)
  List.iter (fun h -> destroy w h) w.live;
  List.iter
    (fun id ->
      match Zion.Monitor.cvm_state w.mon ~cvm:id with
      | None | Some Zion.Cvm.Destroyed -> ()
      | Some st ->
          if st = Zion.Cvm.Quarantined then
            w.quarantines <- w.quarantines + 1;
          call w (fun () -> Zion.Monitor.destroy_cvm w.mon ~cvm:id);
          if
            Zion.Monitor.cvm_state w.mon ~cvm:id = Some Zion.Cvm.Destroyed
          then begin
            w.destroyed <- w.destroyed + 1;
            if st = Zion.Cvm.Quarantined then
              w.quarantines_reclaimed <- w.quarantines_reclaimed + 1
          end)
    w.orphans;
  audit w;
  let clean mon =
    let sm = Zion.Monitor.secmem mon in
    Zion.Secmem.free_blocks sm = Zion.Secmem.total_blocks sm
    && Zion.Secmem.check_invariants sm = Ok ()
  in
  let pool_clean = clean mon && clean dst_mon in
  {
    iterations = iters;
    calls = w.calls;
    ok_calls = w.ok_calls;
    error_calls = Hashtbl.fold (fun k v acc -> (k, v) :: acc) w.errors [];
    uncaught = w.uncaught;
    audits = w.audits;
    violations = List.rev w.violations;
    quarantines = w.quarantines;
    quarantines_reclaimed = w.quarantines_reclaimed;
    cvms_created = w.created;
    cvms_destroyed = w.destroyed;
    migrations = w.migrations;
    migrations_committed = w.mig_committed;
    migrations_aborted = w.mig_aborted;
    ring_poisons = w.ring_poisons;
    ring_fallbacks = w.ring_fallbacks;
    chan_opens = w.chan_opens;
    chan_poisons = w.chan_poisons;
    chan_degradations = w.chan_degradations;
    pool_clean;
  }

(* ---------- SM-crash sweeps ---------- *)

(* Kill the monitor at *every* journal point of every journaled SM
   operation, reboot, recover, and demand convergence: audit clean,
   second recovery a no-op, every CVM destroyable, pool back to
   all-free. Deterministic — no seed: the crash schedule is exhaustive,
   not sampled. *)

type sm_report = {
  sm_ops : (string * int) list;
      (** operation -> journal points crash-tested *)
  sm_cases : int;
  sm_crashes : int;  (** crashes injected (op + nested recovery) *)
  sm_recoveries : int;
  sm_rolled_forward : int;
  sm_rolled_back : int;
  sm_failures : string list;  (** distinct convergence failures; must be [] *)
}

let sm_survived r = r.sm_failures = []

let pp_sm_report ppf r =
  let field fmt = Format.fprintf ppf fmt in
  field "sm-crash sweep: %d cases, %d crashes, %d recoveries@." r.sm_cases
    r.sm_crashes r.sm_recoveries;
  List.iter
    (fun (op, pts) -> field "  %-14s %d journal points@." op pts)
    r.sm_ops;
  field "  rolled forward/back    %d/%d@." r.sm_rolled_forward
    r.sm_rolled_back;
  field "  convergence failures   %d@." (List.length r.sm_failures);
  List.iter (fun f -> field "    %s@." f) r.sm_failures;
  field "  verdict                %s@."
    (if sm_survived r then "SURVIVED" else "COMPROMISED")

type sm_inst = {
  si_mon : Zion.Monitor.t;  (* the monitor whose journal is crashed *)
  si_aux : Zion.Monitor.t list;  (* other monitors to audit and drain *)
  si_op : unit -> unit;  (* the journaled operation under test *)
  si_drain : unit -> unit;  (* session cleanup before the destroy loop *)
}

type sm_scenario = { ss_name : string; ss_build : unit -> sm_inst }

let sm_world () =
  let machine = Machine.create ~nharts:2 ~dram_size:(mib 32) () in
  let config =
    { Zion.Monitor.default_config with validate_shared_on_entry = true }
  in
  let mon = Zion.Monitor.create ~config machine in
  let kvm = Kvm.create ~machine ~monitor:mon () in
  (match Kvm.donate_secure_pool kvm ~mib:2 with
  | Ok () -> ()
  | Error e -> invalid_arg ("Chaos.sm_world: " ^ e));
  (mon, kvm)

(* Setup steps run with the journal disarmed and must succeed; a
   failure here is a broken scenario, not a survivability finding. *)
let sm_expect what = function
  | Ok v -> v
  | Error e ->
      invalid_arg
        (Printf.sprintf "Chaos.sm_crash_sweep setup (%s): %s" what
           (Zion.Ecall.error_to_string e))

let sm_guest ?(prog = Guest.Gprog.hello "c") kvm =
  match
    Kvm.create_cvm_guest kvm ~entry_pc:guest_entry
      ~image:[ (guest_entry, Asm.program prog) ]
  with
  | Ok h -> h
  | Error e -> invalid_arg ("Chaos.sm_crash_sweep setup (guest): " ^ e)

(* Two finalized guests on one monitor, plus their measurements — the
   raw material of every channel scenario. *)
let sm_chan_pair mon kvm =
  let ha = sm_guest kvm in
  let hb = sm_guest kvm in
  let a = Kvm.cvm_id ha and b = Kvm.cvm_id hb in
  let meas id =
    match Zion.Monitor.cvm_measurement mon ~cvm:id with
    | Some m -> m
    | None -> invalid_arg "Chaos.sm_crash_sweep setup (chan): no measurement"
  in
  (ha, hb, a, b, meas a, meas b)

(* Drive the full attested handshake with the journal quiet, leaving an
   Established channel for the op under test to tear at. *)
let sm_chan_established mon kvm =
  let ha, hb, a, b, ma, mb = sm_chan_pair mon kvm in
  let chan, _ =
    sm_expect "chan_grant"
      (Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:"sweep-a" ~expect:mb)
  in
  ignore
    (sm_expect "chan_accept"
       (Zion.Monitor.chan_accept mon ~chan ~cvm:b ~nonce:"sweep-b" ~expect:ma));
  (ha, hb, a, b, chan)

let sm_scenarios () =
  let solo name build_op =
    {
      ss_name = name;
      ss_build =
        (fun () ->
          let mon, kvm = sm_world () in
          let op, drain = build_op mon kvm in
          { si_mon = mon; si_aux = []; si_op = op; si_drain = drain });
    }
  in
  [
    solo "create" (fun mon _ ->
        ( (fun () ->
            ignore
              (Zion.Monitor.create_cvm mon ~nvcpus:1 ~entry_pc:guest_entry)),
          ignore ));
    solo "load" (fun mon _ ->
        let id =
          sm_expect "create"
            (Zion.Monitor.create_cvm mon ~nvcpus:1 ~entry_pc:guest_entry)
        in
        ( (fun () ->
            ignore
              (Zion.Monitor.load_image mon ~cvm:id ~gpa:0x200000L
                 (String.make (3 * 4096) 'x'))),
          ignore ));
    solo "expand" (fun _ kvm ->
        ( (fun () ->
            match Kvm.donate_secure_pool kvm ~mib:2 with
            | Ok () | Error _ -> ()),
          ignore ));
    solo "relinquish" (fun mon kvm ->
        let prog =
          Guest.Gprog.relinquish ~gpa:0x200000L @ Guest.Gprog.shutdown
        in
        let h = sm_guest ~prog kvm in
        ( (fun () ->
            ignore
              (Zion.Monitor.run_vcpu mon ~hart:0 ~cvm:(Kvm.cvm_id h) ~vcpu:0
                 ~max_steps:50_000)),
          ignore ));
    solo "destroy" (fun mon kvm ->
        let h = sm_guest kvm in
        ( (fun () ->
            ignore (Zion.Monitor.destroy_cvm mon ~cvm:(Kvm.cvm_id h))),
          ignore ));
    solo "quarantine" (fun mon kvm ->
        let h = sm_guest kvm in
        let pool_base, _ =
          List.hd (Zion.Secmem.regions (Zion.Monitor.secmem mon))
        in
        Shared_map.map_secure_page_for_attack (Kvm.cvm_shared_map h)
          ~gpa:Zion.Layout.shared_gpa_base ~pa:pool_base;
        ( (fun () ->
            ignore
              (Zion.Monitor.run_vcpu mon ~hart:0 ~cvm:(Kvm.cvm_id h) ~vcpu:0
                 ~max_steps:100)),
          ignore ));
    solo "import" (fun mon kvm ->
        let h = sm_guest kvm in
        let blob =
          sm_expect "export" (Zion.Monitor.export_cvm mon ~cvm:(Kvm.cvm_id h))
        in
        ((fun () -> ignore (Zion.Monitor.import_cvm mon blob)), ignore));
    solo "mig-out-begin" (fun mon kvm ->
        let h = sm_guest kvm in
        ( (fun () ->
            ignore
              (Zion.Monitor.migrate_out_begin mon ~cvm:(Kvm.cvm_id h)
                 ~session:"sweep")),
          fun () ->
            ignore (Zion.Monitor.migrate_out_abort mon ~session:"sweep") ));
    solo "mig-out-abort" (fun mon kvm ->
        let h = sm_guest kvm in
        ignore
          (sm_expect "out_begin"
             (Zion.Monitor.migrate_out_begin mon ~cvm:(Kvm.cvm_id h)
                ~session:"sweep"));
        ( (fun () ->
            ignore (Zion.Monitor.migrate_out_abort mon ~session:"sweep")),
          ignore ));
    solo "mig-out-commit" (fun mon kvm ->
        let h = sm_guest kvm in
        ignore
          (sm_expect "out_begin"
             (Zion.Monitor.migrate_out_begin mon ~cvm:(Kvm.cvm_id h)
                ~session:"sweep"));
        ( (fun () ->
            ignore (Zion.Monitor.migrate_out_commit mon ~session:"sweep")),
          ignore ));
    (* Channel lifecycle: every journaled chan_* transition, plus every
       implicit revocation path (endpoint destroy, quarantine, and
       migrate-out commit), torn at each journal point. *)
    solo "chan-grant" (fun mon kvm ->
        let _, _, a, b, _, mb = sm_chan_pair mon kvm in
        ( (fun () ->
            ignore
              (Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:"sweep-a"
                 ~expect:mb)),
          ignore ));
    solo "chan-accept" (fun mon kvm ->
        let _, _, a, b, ma, mb = sm_chan_pair mon kvm in
        let chan, _ =
          sm_expect "chan_grant"
            (Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:"sweep-a"
               ~expect:mb)
        in
        ( (fun () ->
            ignore
              (Zion.Monitor.chan_accept mon ~chan ~cvm:b ~nonce:"sweep-b"
                 ~expect:ma)),
          ignore ));
    solo "chan-revoke" (fun mon kvm ->
        let _, _, a, _, chan = sm_chan_established mon kvm in
        ( (fun () -> ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:a)),
          ignore ));
    solo "chan-degrade" (fun mon kvm ->
        let _, _, _, _, chan = sm_chan_established mon kvm in
        let pa =
          match Zion.Monitor.chan_info mon ~chan with
          | Some { Zion.Monitor.ci_page = Some pa; _ } -> pa
          | _ ->
              invalid_arg "Chaos.sm_crash_sweep setup (chan-degrade): no ring"
        in
        let bus = (Kvm.machine kvm).Machine.bus in
        (* A zero-length "message" in the a→b header: every poll strikes,
           and the strike that exhausts the budget journals the
           degradation teardown — the op we crash at every point. *)
        Bus.write bus pa 8 1L;
        Bus.write bus (Int64.add pa 8L) 8 0L;
        ( (fun () ->
            for _ = 1 to Zion.Monitor.chan_max_strikes do
              ignore (Zion.Monitor.chan_poll mon ~chan)
            done),
          ignore ));
    solo "chan-destroy-a" (fun mon kvm ->
        let _, _, a, _, _ = sm_chan_established mon kvm in
        ((fun () -> ignore (Zion.Monitor.destroy_cvm mon ~cvm:a)), ignore));
    solo "chan-destroy-b" (fun mon kvm ->
        let _, _, _, b, _ = sm_chan_established mon kvm in
        ((fun () -> ignore (Zion.Monitor.destroy_cvm mon ~cvm:b)), ignore));
    solo "chan-quarantine" (fun mon kvm ->
        let ha, _, a, _, _ = sm_chan_established mon kvm in
        let pool_base, _ =
          List.hd (Zion.Secmem.regions (Zion.Monitor.secmem mon))
        in
        Shared_map.map_secure_page_for_attack (Kvm.cvm_shared_map ha)
          ~gpa:Zion.Layout.shared_gpa_base ~pa:pool_base;
        ( (fun () ->
            ignore
              (Zion.Monitor.run_vcpu mon ~hart:0 ~cvm:a ~vcpu:0 ~max_steps:100)),
          ignore ));
    solo "chan-mig-commit" (fun mon kvm ->
        let _, _, a, _, _ = sm_chan_established mon kvm in
        ignore
          (sm_expect "out_begin"
             (Zion.Monitor.migrate_out_begin mon ~cvm:a ~session:"sweep"));
        ( (fun () ->
            ignore (Zion.Monitor.migrate_out_commit mon ~session:"sweep")),
          ignore ));
  ]
  @
  (* Migration-in ops crash the *destination* monitor; the source is
     audited and drained alongside. *)
  let mig_in name op drain_src =
    {
      ss_name = name;
      ss_build =
        (fun () ->
          let src, skvm = sm_world () in
          let h = sm_guest skvm in
          let blob, epoch =
            sm_expect "out_begin"
              (Zion.Monitor.migrate_out_begin src ~cvm:(Kvm.cvm_id h)
                 ~session:"sweep")
          in
          let dst, _ = sm_world () in
          op ~src ~dst ~blob ~epoch;
          {
            si_mon = dst;
            si_aux = [ src ];
            si_op =
              (match name with
              | "mig-in-prepare" ->
                  fun () ->
                    ignore
                      (Zion.Monitor.migrate_in_prepare dst ~session:"sweep"
                         ~epoch blob)
              | "mig-in-commit" ->
                  fun () ->
                    ignore (Zion.Monitor.migrate_in_commit dst ~session:"sweep")
              | _ ->
                  fun () ->
                    ignore (Zion.Monitor.migrate_in_abort dst ~session:"sweep"));
            si_drain =
              (fun () ->
                ignore (Zion.Monitor.migrate_in_abort dst ~session:"sweep");
                drain_src src);
          });
    }
  in
  let prepared ~src:_ ~dst ~blob ~epoch =
    ignore
      (sm_expect "in_prepare"
         (Zion.Monitor.migrate_in_prepare dst ~session:"sweep" ~epoch blob))
  in
  [
    mig_in "mig-in-prepare"
      (fun ~src:_ ~dst:_ ~blob:_ ~epoch:_ -> ())
      (fun src ->
        ignore (Zion.Monitor.migrate_out_abort src ~session:"sweep"));
    mig_in "mig-in-commit" prepared (fun src ->
        ignore (Zion.Monitor.migrate_out_commit src ~session:"sweep"));
    mig_in "mig-in-abort" prepared (fun src ->
        ignore (Zion.Monitor.migrate_out_abort src ~session:"sweep"));
  ]

let sm_crash_sweep ?(recovery_crashes = true) ?(max_points = 64) () =
  let failures = ref [] in
  let fail name k msg =
    let m = Printf.sprintf "%s@%d: %s" name k msg in
    if not (List.mem m !failures) then failures := m :: !failures
  in
  let crashes = ref 0 and recoveries = ref 0 in
  let fwd = ref 0 and back = ref 0 in
  let cases = ref 0 in
  let op_points = ref [] in
  (* One case: arm the journal to crash at point [k] of the operation,
     run it, and (if the crash fired) reboot + recover — when
     [recovery_crashes], the recovery itself is crashed at successively
     later points until one run completes, exercising
     recover-after-recover-crash. Returns whether the crash fired. *)
  let run_case name k inst =
    incr cases;
    let j = Zion.Monitor.journal inst.si_mon in
    let crashed = ref false in
    (try
       Zion.Journal.set_crash_after j k;
       inst.si_op ();
       Zion.Journal.disarm j
     with
    | Zion.Journal.Crashed -> crashed := true
    | exn ->
        Zion.Journal.disarm j;
        fail name k ("op raised " ^ Printexc.to_string exn));
    if !crashed then begin
      incr crashes;
      Zion.Monitor.crash_reboot inst.si_mon;
      let rec recover_through_crashes jj =
        if recovery_crashes && jj <= max_points then begin
          Zion.Journal.set_crash_after j jj;
          match Zion.Monitor.recover inst.si_mon with
          | rep ->
              Zion.Journal.disarm j;
              incr recoveries;
              rep
          | exception Zion.Journal.Crashed ->
              incr crashes;
              Zion.Monitor.crash_reboot inst.si_mon;
              recover_through_crashes (jj + 1)
        end
        else begin
          Zion.Journal.disarm j;
          incr recoveries;
          Zion.Monitor.recover inst.si_mon
        end
      in
      match recover_through_crashes 1 with
      | rep ->
          fwd := !fwd + rep.Zion.Monitor.rr_rolled_forward;
          back := !back + rep.Zion.Monitor.rr_rolled_back
      | exception exn -> fail name k ("recover raised " ^ Printexc.to_string exn)
    end;
    (* Convergence: every monitor audits clean... *)
    List.iter
      (fun mon ->
        match Zion.Monitor.audit mon with
        | Ok _ -> ()
        | Error findings ->
            List.iter (fun f -> fail name k ("audit: " ^ f)) findings
        | exception exn ->
            fail name k ("audit raised " ^ Printexc.to_string exn))
      (inst.si_mon :: inst.si_aux);
    (* ...recovery is idempotent (a second run finds nothing pending)... *)
    if !crashed then begin
      match Zion.Monitor.recover inst.si_mon with
      | rep ->
          incr recoveries;
          if rep.Zion.Monitor.rr_pending <> 0 then
            fail name k
              (Printf.sprintf "second recovery found %d pending records"
                 rep.Zion.Monitor.rr_pending)
      | exception exn ->
          fail name k ("re-recover raised " ^ Printexc.to_string exn)
    end;
    (* ...and the whole world still tears down to an all-free pool. *)
    (try inst.si_drain ()
     with exn -> fail name k ("drain raised " ^ Printexc.to_string exn));
    List.iter
      (fun mon ->
        for id = 0 to 15 do
          ignore (Zion.Monitor.destroy_cvm mon ~cvm:id)
        done;
        (match Zion.Monitor.audit mon with
        | Ok _ -> ()
        | Error findings ->
            List.iter (fun f -> fail name k ("post-drain audit: " ^ f)) findings
        | exception exn ->
            fail name k ("post-drain audit raised " ^ Printexc.to_string exn));
        let sm = Zion.Monitor.secmem mon in
        if Zion.Secmem.free_blocks sm <> Zion.Secmem.total_blocks sm then
          fail name k "pool did not drain to all-free";
        match Zion.Secmem.check_invariants sm with
        | Ok () -> ()
        | Error m -> fail name k ("pool invariants: " ^ m))
      (inst.si_mon :: inst.si_aux);
    !crashed
  in
  List.iter
    (fun sc ->
      let k = ref 1 in
      let swept = ref false in
      while (not !swept) && !k <= max_points do
        let inst = sc.ss_build () in
        if run_case sc.ss_name !k inst then incr k
        else begin
          (* the op completed before point [k]: every point is covered *)
          op_points := (sc.ss_name, !k - 1) :: !op_points;
          swept := true
        end
      done;
      if not !swept then begin
        op_points := (sc.ss_name, max_points) :: !op_points;
        fail sc.ss_name max_points
          "sweep did not exhaust the op's journal points"
      end)
    (sm_scenarios ());
  {
    sm_ops = List.rev !op_points;
    sm_cases = !cases;
    sm_crashes = !crashes;
    sm_recoveries = !recoveries;
    sm_rolled_forward = !fwd;
    sm_rolled_back = !back;
    sm_failures = List.rev !failures;
  }
