(** The untrusted host virtualization stack: KVM run loops for normal
    VMs and the driver that controls confidential VMs through the Secure
    Monitor's ECALL interface, plus the QEMU-side device emulation.

    Normal VMs are the paper's baseline: KVM owns their stage-2 tables
    (in normal memory), handles their stage-2 faults (§V.C's 39,607-cycle
    path), their timer ticks, and their MMIO directly in HS mode.

    Confidential VMs are driven through [Zion.Monitor]: KVM sees only
    the exit reasons and the shared vCPU, and services MMIO, shared-
    region faults and pool expansion. *)

type t

val create :
  machine:Riscv.Machine.t ->
  monitor:Zion.Monitor.t ->
  ?disk_sectors:int ->
  unit ->
  t
(** Sets up the host allocator over DRAM above the 16 MiB kernel image
    and the emulated virtio devices. *)

val machine : t -> Riscv.Machine.t
val monitor : t -> Zion.Monitor.t
val host_mem : t -> Host_mem.t
val devices : t -> Mmio_emul.t

val donate_secure_pool : t -> mib:int -> (unit, string) result
(** Allocate a contiguous, block-aligned region from host memory and
    register it with the Secure Monitor as the initial secure pool. *)

(* {2 Normal VMs (baseline)} *)

type nvm

val create_normal_vm :
  t -> entry_pc:int64 -> image:(int64 * string) list -> (nvm, string) result
(** Build a normal VM: stage-2 tables in normal memory, image pages
    allocated and mapped eagerly by the host. *)

type normal_exit = N_timer | N_shutdown | N_limit | N_error of string

val run_normal_vm :
  t -> nvm -> hart:int -> max_steps:int -> normal_exit
(** KVM vCPU loop: runs the guest, servicing stage-2 faults, MMIO and
    SBI calls in HS mode; returns on timer, shutdown, or step budget. *)

val nvm_fault_log : t -> int list
(** Cycles charged per normal-VM stage-2 fault, most recent first. *)

val nvm_timer_ticks : t -> int

(* {2 Confidential VMs} *)

type cvm_handle

val cvm_id : cvm_handle -> int
val cvm_shared_map : cvm_handle -> Shared_map.t

val create_cvm_guest :
  t ->
  entry_pc:int64 ->
  image:(int64 * string) list ->
  (cvm_handle, string) result
(** Full CVM setup: create through the SM, load and measure the image,
    finalize, build the hypervisor's shared subtree and hand its root to
    the SM. *)

type cvm_outcome =
  | C_timer
  | C_shutdown
  | C_limit
  | C_denied  (** the SM refused a resume (Check-after-Load etc.) *)
  | C_error of string

val run_cvm :
  t -> cvm_handle -> hart:int -> max_steps:int -> cvm_outcome
(** Drive the CVM until a scheduling-relevant event: MMIO exits are
    emulated and resumed internally (through the shared vCPU or
    GET/SET_REG according to the monitor's configuration), shared-region
    faults are mapped, pool exhaustion triggers expansion. An expansion
    that adds no block to the pool (see [expand_policy]) is retried
    with exponential backoff at most a few times before the driver
    returns [C_error]. *)

type expand_policy =
  | Expand_honest  (** register exactly what the SM asked for *)
  | Expand_deny  (** never register; pretend to comply *)
  | Expand_delay of int  (** skip the first [n] requests, then honest *)
  | Expand_short  (** register one block less than asked *)

val set_expand_policy : t -> expand_policy -> unit
(** Fault injection for the slow path: control how [Exit_need_memory]
    is answered. The dishonest policies model a hostile or broken host;
    the SM must keep its invariants regardless (the guest simply cannot
    make progress, and [run_cvm] gives up after bounded retries). *)

val run_cvm_to_completion :
  t -> cvm_handle -> hart:int -> quantum:int -> max_slices:int -> cvm_outcome
(** Keep scheduling the CVM (reprogramming the timer each slice) until
    it shuts down or the slice budget runs out. *)

val mmio_exits_serviced : t -> int
val expansions : t -> int

(** {2 Exitless I/O}

    A per-CVM {!Virtio_ring} in the SWIOTLB shared region: the guest
    publishes descriptors without ringing any doorbell, the host
    drains the ring on its polling beat (every [run_cvm] entry and
    every timer exit), and completions come back batched under one
    used-index publish. A poisoned or stalled ring degrades to the
    exitful MMIO kick path and quarantines the device association —
    never the CVM. *)

val enable_exitless_io :
  t -> cvm_handle -> (Virtio_ring.guest, string) result
(** Map the ring page into the CVM's shared subtree (reusing an
    existing mapping if the guest already faulted it in) and start
    host-side polling. Returns the trusted guest view. *)

val disable_exitless_io : t -> cvm_handle -> unit
(** Tear the device association down: retire the host poller, force
    the guest view into exitful fallback (bounce slots released
    exactly once, ring page scrubbed), and unmap the ring page from
    the shared subtree. Idempotent. *)

val service_exitless : t -> cvm_handle -> int
(** Drain the CVM's ring once (host side); returns completions
    written. [0] when no ring is bound or it has been retired. *)

val exitless_poll : t -> cvm_handle -> int * Virtio_ring.verdict
(** Guest-side consume with the degradation policy attached: any
    fallback the Check-after-Load validation triggers immediately
    quarantines the device association via {!disable_exitless_io}. *)

val exitless_guest : t -> cvm_handle -> Virtio_ring.guest option
val exitless_host : t -> cvm_handle -> Virtio_ring.host option
val exitless_active : t -> cvm_handle -> bool

val expand_stalls : t -> int
(** Expansion requests that added nothing to the pool (dishonest
    policies) and were retried with backoff. Each retry charges an
    exponential backoff plus a per-instance deterministic jitter in
    [0, base/2) — so the ledger records between [1000 lsl n] and
    [1.5 * (1000 lsl n)] cycles for stall [n], and a fleet of tenants
    stalling on the same exhausted pool does not retry in lockstep. *)

(** {2 Attested inter-CVM channels}

    The host's relay role in the [Zion.Monitor.chan_*] handshake. *)

val connect_channel :
  t ->
  cvm_handle ->
  cvm_handle ->
  nonce_a:string ->
  nonce_b:string ->
  (int, string) result
(** Full attested handshake between two CVMs on this platform: grant
    from the first endpoint (challenging the peer with [nonce_a]),
    verify the peer's SM-signed report (MAC, expected measurement,
    nonce freshness — all in constant time), then accept from the
    second endpoint (challenging back with [nonce_b]) and verify the
    grantor's report likewise. Any verification failure revokes the
    offer before the mapping could be used and returns [Error]; on
    [Ok chan] the channel is Established with both slot GPAs live. *)
