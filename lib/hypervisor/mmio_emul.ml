type t = { blk : Virtio_blk.t; net : Virtio_net.t }

let blk_slot = 0x000L
let net_slot = 0x100L

let create ~bus ~disk_sectors =
  {
    blk = Virtio_blk.create ~bus ~capacity_sectors:disk_sectors;
    net = Virtio_net.create ~bus;
  }

let blk t = t.blk
let net t = t.net

let set_translate t f =
  Virtio_blk.set_translate t.blk f;
  Virtio_net.set_translate t.net f

let set_trace t tr =
  Virtio_blk.set_trace t.blk tr;
  Virtio_net.set_trace t.net tr

(* Exitless path: drain one CVM's ring through the same two devices
   the MMIO kicks use, so counters, backing store and peer callbacks
   are shared between the two paths. *)
let service_ring t host = Virtio_ring.service host ~blk:t.blk ~net:t.net

let handle t (mmio : Zion.Vcpu.mmio) =
  let off = Int64.sub mmio.Zion.Vcpu.mmio_gpa Zion.Layout.virtio_mmio_gpa in
  if off < 0L || off >= 0x1000L then 0L
  else if Riscv.Xword.ult off net_slot then begin
    let dev_off = Int64.sub off blk_slot in
    if mmio.Zion.Vcpu.mmio_write then begin
      Virtio_blk.mmio_write t.blk dev_off mmio.Zion.Vcpu.mmio_size
        mmio.Zion.Vcpu.mmio_data;
      0L
    end
    else Virtio_blk.mmio_read t.blk dev_off mmio.Zion.Vcpu.mmio_size
  end
  else begin
    let dev_off = Int64.sub off net_slot in
    if mmio.Zion.Vcpu.mmio_write then begin
      Virtio_net.mmio_write t.net dev_off mmio.Zion.Vcpu.mmio_size
        mmio.Zion.Vcpu.mmio_data;
      0L
    end
    else Virtio_net.mmio_read t.net dev_off mmio.Zion.Vcpu.mmio_size
  end
