(** Exitless virtio split ring over the SWIOTLB shared region.

    The ring page ([Guest.Swiotlb.ring_gpa]) lives in the hypervisor's
    shared subtree, so every byte of it is host-writable at any moment.
    Going exitless therefore extends ZION's Check-after-Load discipline
    from the shared vCPU to the I/O plane:

    - the {e guest view} is the trusted driver model. It keeps a
      private shadow of every descriptor it publishes and, on every
      used-ring consume, re-validates each host-writable field against
      that shadow — used-index monotonicity (no rewind, no advance past
      the outstanding count), used-entry ids (in range, currently in
      flight — no replay), completed lengths (bounded by what was
      posted), and the descriptor bytes themselves (unchanged
      mid-flight). Each violation is a typed {!verdict} and a strike;
      {!max_strikes} strikes, or a stalled ring caught by the poll
      watchdog, degrade the ring: the page is scrubbed, bounce slots
      are released exactly once, and the guest falls back to the
      exitful MMIO kick path. The CVM keeps running — only the device
      association dies.

    - the {e host view} is a defensive polling device: it clamps a
      runaway avail index to the queue size, bounds-checks descriptor
      GPAs and lengths before DMA (the IOPMP remains the backstop),
      services blk/net requests through the same device paths as the
      MMIO kicks, and publishes the used index once per batch —
      doorbell coalescing. *)

type verdict =
  | V_ok
  | V_used_rewind  (** used idx moved backwards *)
  | V_used_runaway  (** used idx advanced past the outstanding count *)
  | V_bad_id  (** used entry names a descriptor outside the queue *)
  | V_replay  (** used entry names a descriptor not in flight *)
  | V_bad_len  (** completed length exceeds the posted length *)
  | V_desc_mutated  (** descriptor bytes changed while in flight *)
  | V_stall  (** watchdog: outstanding work, no progress *)

val verdict_to_string : verdict -> string

type mode = Exitless | Fallen_back

val max_strikes : int
(** CAL rejections tolerated before the guest degrades (3). *)

val watchdog_polls : int
(** Empty polls with work outstanding before the stall watchdog
    degrades the ring. *)

type ctx
(** Shared access context: bus, GPA→PA translation for the ring page,
    the metrics registry scope and the cycle-charging hook. *)

val make_ctx :
  bus:Riscv.Bus.t ->
  translate:(int64 -> int64 option) ->
  registry:Metrics.Registry.t ->
  cvm:int ->
  cost:Riscv.Cost.t ->
  charge:(string -> int -> unit) ->
  ctx

type guest
type host

val create_pair : ctx -> guest * host
(** Fresh guest and host views over a (zeroed) ring page. *)

(** {2 Guest view — trusted driver} *)

val submit :
  guest ->
  op:int ->
  len:int ->
  data_gpa:int64 ->
  meta:int64 ->
  ?slot:int ->
  unit ->
  (int, Zion.Sm_error.t) result
(** Publish one descriptor and its avail entry without ringing any
    doorbell. Returns the descriptor id. [Error Bad_state] once the
    ring has fallen back, [Error No_memory] when the queue is full.
    [slot], when given, is a bounce-slot index from {!guest_pool}
    released automatically on completion or fallback. *)

val consume : guest -> int * verdict
(** Poll the used ring once, Check-after-Load-validating every
    host-writable field. Returns completions retired this poll and the
    verdict; any verdict other than [V_ok] consumed nothing and
    recorded a strike (or degraded the ring). *)

val guest_mode : guest -> mode
val outstanding : guest -> int
val strikes : guest -> int
val completed : guest -> int
val last_verdict : guest -> verdict option
val guest_pool : guest -> Guest.Swiotlb.pool

val force_fallback : guest -> unit
(** Degrade immediately (external watchdog / teardown path): scrub the
    ring page, release in-flight bounce slots exactly once, switch to
    [Fallen_back]. Idempotent. *)

(** {2 Host view — defensive device} *)

val service : host -> blk:Virtio_blk.t -> net:Virtio_net.t -> int
(** Poll the avail ring and service every published request (clamped
    to the queue size), writing used entries as it goes and publishing
    the used index once at the end of the batch. Returns completions
    written. Never raises: malformed descriptors and IOPMP-rejected
    DMA become zero-length error completions. *)

val retire : host -> unit
(** Stop servicing (the hypervisor side of ring teardown). *)

val host_active : host -> bool
val served : host -> int
val notifications : host -> int
val host_rejects : host -> int

(** {2 Raw ring access (attacks, chaos, tests)} *)

val peek :
  bus:Riscv.Bus.t ->
  translate:(int64 -> int64 option) ->
  off:int ->
  width:int ->
  int64 option

val poke :
  bus:Riscv.Bus.t ->
  translate:(int64 -> int64 option) ->
  off:int ->
  width:int ->
  int64 ->
  bool
(** Read/write a field of the ring page directly, the way a Byzantine
    host would — no validation, no charging. [off] is a byte offset
    within the page ({!Guest.Swiotlb.ring_desc_off} etc.). *)
