open Riscv
module Sw = Guest.Swiotlb

type verdict =
  | V_ok
  | V_used_rewind
  | V_used_runaway
  | V_bad_id
  | V_replay
  | V_bad_len
  | V_desc_mutated
  | V_stall

let verdict_to_string = function
  | V_ok -> "ok"
  | V_used_rewind -> "used_rewind"
  | V_used_runaway -> "used_runaway"
  | V_bad_id -> "bad_id"
  | V_replay -> "replay"
  | V_bad_len -> "bad_len"
  | V_desc_mutated -> "desc_mutated"
  | V_stall -> "stall"

type mode = Exitless | Fallen_back

let max_strikes = 3
let watchdog_polls = 64
let qsize = Sw.ring_entries

type ctx = {
  bus : Bus.t;
  translate : int64 -> int64 option;
  registry : Metrics.Registry.t;
  cvm : int;
  cost : Cost.t;
  charge : string -> int -> unit;
}

let make_ctx ~bus ~translate ~registry ~cvm ~cost ~charge =
  { bus; translate; registry; cvm; cost; charge }

let inc ctx name =
  Metrics.Registry.inc ctx.registry ~scope:(Metrics.Registry.Cvm ctx.cvm) name

let inc_by ctx name by =
  Metrics.Registry.inc ctx.registry
    ~scope:(Metrics.Registry.Cvm ctx.cvm)
    ~by name

(* Raw field access at a byte offset within the ring page. Both views
   go through these; so do the attack vectors (which is the point —
   the host's writes and the guest's loads hit the same bytes). *)
let peek_at ~bus ~translate ~off ~width =
  match translate (Int64.add Sw.ring_gpa (Int64.of_int off)) with
  | None -> None
  | Some pa -> Some (Bus.read bus pa width)

let poke_at ~bus ~translate ~off ~width v =
  match translate (Int64.add Sw.ring_gpa (Int64.of_int off)) with
  | None -> false
  | Some pa ->
      Bus.write bus pa width v;
      true

let peek = peek_at
let poke = poke_at

let ctx_peek ctx ~off ~width =
  peek_at ~bus:ctx.bus ~translate:ctx.translate ~off ~width

let ctx_poke ctx ~off ~width v =
  poke_at ~bus:ctx.bus ~translate:ctx.translate ~off ~width v

(* One posted descriptor, as the guest remembers it. *)
type shadow = {
  s_gpa : int64;
  s_len : int;
  s_op : int;
  s_meta : int64;
  s_slot : int option;
}

type guest = {
  g : ctx;
  shadow : shadow option array;
  mutable avail_idx : int;  (* free-running mod 2^16 *)
  mutable used_seen : int;
  mutable g_outstanding : int;
  mutable g_strikes : int;
  mutable empty_polls : int;
  mutable g_mode : mode;
  pool : Sw.pool;
  mutable g_completed : int;
  mutable g_last : verdict option;
}

type host = {
  h : ctx;
  mutable avail_seen : int;
  mutable used_next : int;
  mutable h_served : int;
  mutable h_notifications : int;
  mutable h_rejects : int;
  mutable h_active : bool;
}

let scrub ctx =
  match ctx.translate Sw.ring_gpa with
  | None -> ()
  | Some pa -> Bus.write_bytes ctx.bus pa (String.make 4096 '\x00')

let create_pair ctx =
  scrub ctx;
  ( {
      g = ctx;
      shadow = Array.make qsize None;
      avail_idx = 0;
      used_seen = 0;
      g_outstanding = 0;
      g_strikes = 0;
      empty_polls = 0;
      g_mode = Exitless;
      pool = Sw.create_pool ();
      g_completed = 0;
      g_last = None;
    },
    {
      h = ctx;
      avail_seen = 0;
      used_next = 0;
      h_served = 0;
      h_notifications = 0;
      h_rejects = 0;
      h_active = true;
    } )

(* {2 Guest view} *)

let guest_mode g = g.g_mode
let outstanding g = g.g_outstanding
let strikes g = g.g_strikes
let completed g = g.g_completed
let last_verdict g = g.g_last
let guest_pool g = g.pool

let release_slot g = function
  | None -> ()
  | Some slot -> ( match Sw.release g.pool slot with Ok () | Error _ -> ())

let force_fallback g =
  if g.g_mode = Exitless then begin
    g.g_mode <- Fallen_back;
    inc g.g "sm.io.fallbacks";
    (* Release every in-flight bounce slot exactly once, then scrub the
       page so a stale completion cannot be replayed into a future
       ring incarnation. *)
    Array.iteri
      (fun i sh ->
        match sh with
        | None -> ()
        | Some sh ->
            release_slot g sh.s_slot;
            g.shadow.(i) <- None)
      g.shadow;
    g.g_outstanding <- 0;
    scrub g.g
  end

let strike g v =
  g.g_last <- Some v;
  g.g_strikes <- g.g_strikes + 1;
  inc g.g "sm.io.cal_rejections";
  if g.g_strikes >= max_strikes then force_fallback g

let free_desc_id g =
  let rec go i =
    if i >= qsize then None
    else if g.shadow.(i) = None then Some i
    else go (i + 1)
  in
  go 0

let submit g ~op ~len ~data_gpa ~meta ?slot () =
  if g.g_mode = Fallen_back then Error Zion.Sm_error.Bad_state
  else if g.g_outstanding >= qsize then Error Zion.Sm_error.No_memory
  else
    match free_desc_id g with
    | None -> Error Zion.Sm_error.No_memory
    | Some id ->
        let d = Sw.ring_desc_off id in
        let ok =
          ctx_poke g.g ~off:d ~width:8 data_gpa
          && ctx_poke g.g ~off:(d + 8) ~width:4 (Int64.of_int len)
          && ctx_poke g.g ~off:(d + 12) ~width:4 (Int64.of_int op)
          && ctx_poke g.g ~off:(d + 16) ~width:8 meta
          && ctx_poke g.g
               ~off:(Sw.ring_avail_entry_off (g.avail_idx mod qsize))
               ~width:4 (Int64.of_int id)
        in
        if not ok then Error Zion.Sm_error.Invalid_address
        else begin
          g.shadow.(id) <-
            Some { s_gpa = data_gpa; s_len = len; s_op = op; s_meta = meta;
                   s_slot = slot };
          g.avail_idx <- (g.avail_idx + 1) land 0xFFFF;
          ignore
            (ctx_poke g.g ~off:Sw.ring_avail_idx_off ~width:4
               (Int64.of_int g.avail_idx));
          g.g_outstanding <- g.g_outstanding + 1;
          g.g.charge "ring_submit" g.g.cost.Cost.ring_submit;
          Ok id
        end

(* Signed distance between two free-running 16-bit indices. *)
let idx_diff newer older = ((newer - older + 0x8000) land 0xFFFF) - 0x8000

let consume g =
  if g.g_mode = Fallen_back then (0, V_ok)
  else begin
    g.g.charge "ring_consume" g.g.cost.Cost.shared_item_load;
    match ctx_peek g.g ~off:Sw.ring_used_idx_off ~width:4 with
    | None ->
        (* The host yanked the ring page itself: treat as a stall. *)
        g.g_last <- Some V_stall;
        force_fallback g;
        (0, V_stall)
    | Some used_raw ->
        let used = Int64.to_int (Int64.logand used_raw 0xFFFFL) in
        let d = idx_diff used g.used_seen in
        if d < 0 then begin
          strike g V_used_rewind;
          (0, V_used_rewind)
        end
        else if d > g.g_outstanding then begin
          strike g V_used_runaway;
          (0, V_used_runaway)
        end
        else if d = 0 then begin
          if g.g_outstanding > 0 then begin
            g.empty_polls <- g.empty_polls + 1;
            if g.empty_polls > watchdog_polls then begin
              g.g_last <- Some V_stall;
              force_fallback g;
              (0, V_stall)
            end
            else (0, V_ok)
          end
          else (0, V_ok)
        end
        else begin
          (* Check-after-Load every host-writable field of every new
             completion before acting on any of them. Shadow entries are
             only cleared once the whole batch validates, so replay of an
             id *within* the batch must be caught separately: [seen]
             records ids already validated this batch. *)
          let entries = ref [] in
          let seen = Array.make qsize false in
          let bad = ref None in
          let k = ref 0 in
          while !bad = None && !k < d do
            let pos = (g.used_seen + !k) mod qsize in
            let u = Sw.ring_used_entry_off pos in
            (match
               (ctx_peek g.g ~off:u ~width:4, ctx_peek g.g ~off:(u + 4) ~width:4)
             with
            | Some id_raw, Some len_raw -> begin
                let id = Int64.to_int (Int64.logand id_raw 0xFFFFFFFFL) in
                let len = Int64.to_int (Int64.logand len_raw 0xFFFFFFFFL) in
                g.g.charge "ring_consume_check"
                  g.g.cost.Cost.ring_consume_check;
                if id < 0 || id >= qsize then bad := Some V_bad_id
                else if seen.(id) then bad := Some V_replay
                else
                  match g.shadow.(id) with
                  | None -> bad := Some V_replay
                  | Some sh ->
                      if len > sh.s_len then bad := Some V_bad_len
                      else begin
                        let doff = Sw.ring_desc_off id in
                        let same =
                          ctx_peek g.g ~off:doff ~width:8 = Some sh.s_gpa
                          && ctx_peek g.g ~off:(doff + 8) ~width:4
                             = Some (Int64.of_int sh.s_len)
                          && ctx_peek g.g ~off:(doff + 12) ~width:4
                             = Some (Int64.of_int sh.s_op)
                          && ctx_peek g.g ~off:(doff + 16) ~width:8
                             = Some sh.s_meta
                        in
                        if not same then bad := Some V_desc_mutated
                        else begin
                          seen.(id) <- true;
                          entries := (id, sh) :: !entries
                        end
                      end
              end
            | _ -> bad := Some V_stall);
            incr k
          done;
          match !bad with
          | Some v ->
              if v = V_stall then begin
                g.g_last <- Some V_stall;
                force_fallback g
              end
              else strike g v;
              (0, v)
          | None ->
              List.iter
                (fun (id, sh) ->
                  release_slot g sh.s_slot;
                  g.shadow.(id) <- None)
                !entries;
              g.g_outstanding <- g.g_outstanding - d;
              g.g_completed <- g.g_completed + d;
              g.used_seen <- used;
              g.empty_polls <- 0;
              inc_by g.g "sm.io.completions" d;
              if d > 1 then inc_by g.g "sm.io.completions_coalesced" (d - 1);
              (d, V_ok)
        end
  end

(* {2 Host view} *)

let host_active h = h.h_active
let served h = h.h_served
let notifications h = h.h_notifications
let host_rejects h = h.h_rejects
let retire h = h.h_active <- false

let host_reject h =
  h.h_rejects <- h.h_rejects + 1;
  inc h.h "sm.io.host_rejects"

(* Validate a descriptor the way a non-malicious host must before
   touching it: the data buffer stays inside the shared window and the
   length is bounded by one bounce slot. The IOPMP is the backstop if
   this check is wrong or raced. *)
let desc_plausible ~data_gpa ~len =
  len >= 0 && len <= Sw.slot_size
  && Zion.Layout.is_shared_gpa data_gpa
  && (len = 0
     || Zion.Layout.is_shared_gpa (Int64.add data_gpa (Int64.of_int (len - 1))))

let service h ~blk ~net =
  if not h.h_active then 0
  else begin
    h.h.charge "ring_host_poll" h.h.cost.Cost.ring_host_poll;
    match ctx_peek h.h ~off:Sw.ring_avail_idx_off ~width:4 with
    | None -> 0
    | Some avail_raw ->
        let avail = Int64.to_int (Int64.logand avail_raw 0xFFFFL) in
        let d = (avail - h.avail_seen) land 0xFFFF in
        (* A runaway avail index (hostile guest or third-party poke)
           is clamped to the queue size: a well-formed driver can never
           have more than qsize requests in flight. *)
        let d =
          if d > qsize then begin
            host_reject h;
            qsize
          end
          else d
        in
        let completions = ref 0 in
        for k = 0 to d - 1 do
          let pos = (h.avail_seen + k) mod qsize in
          let id =
            match ctx_peek h.h ~off:(Sw.ring_avail_entry_off pos) ~width:4 with
            | None -> -1
            | Some v -> Int64.to_int (Int64.logand v 0xFFFFFFFFL)
          in
          let result =
            if id < 0 || id >= qsize then begin
              host_reject h;
              None (* garbage id: no used entry to write it under *)
            end
            else begin
              let doff = Sw.ring_desc_off id in
              match
                ( ctx_peek h.h ~off:doff ~width:8,
                  ctx_peek h.h ~off:(doff + 8) ~width:4,
                  ctx_peek h.h ~off:(doff + 12) ~width:4,
                  ctx_peek h.h ~off:(doff + 16) ~width:8 )
              with
              | Some data_gpa, Some len_raw, Some op_raw, Some meta ->
                  let len = Int64.to_int (Int64.logand len_raw 0xFFFFFFFFL) in
                  let op = Int64.to_int (Int64.logand op_raw 0xFFFFFFFFL) in
                  if not (desc_plausible ~data_gpa ~len) then begin
                    host_reject h;
                    Some (id, 0)
                  end
                  else begin
                    let served_len =
                      try
                        if op = Sw.op_blk_read || op = Sw.op_blk_write then
                          match
                            Virtio_blk.serve_ring blk
                              ~write:(op = Sw.op_blk_write)
                              ~sector:(Int64.to_int meta) ~len ~data_gpa
                          with
                          | Ok n -> n
                          | Error _ ->
                              host_reject h;
                              0
                        else if op = Sw.op_net_tx then
                          match Virtio_net.serve_ring_tx net ~data_gpa ~len with
                          | Ok n -> n
                          | Error _ ->
                              host_reject h;
                              0
                        else if op = Sw.op_net_rx then
                          match Virtio_net.serve_ring_rx net ~data_gpa ~len with
                          | Ok n -> n
                          | Error _ ->
                              host_reject h;
                              0
                        else begin
                          host_reject h;
                          0
                        end
                      with
                      | Bus.Fault _ ->
                          (* IOPMP backstop: the descriptor smuggled a
                             non-shared PA past the plausibility check. *)
                          host_reject h;
                          0
                      | Invalid_argument _ ->
                          (* Backstop for guest-controlled device math
                             (e.g. a sector offset the device-side
                             bounds check mishandled): the polling loop
                             must reject, never crash out of run_cvm. *)
                          host_reject h;
                          0
                    in
                    Some (id, served_len)
                  end
              | _ -> None
            end
          in
          match result with
          | None -> ()
          | Some (id, len) ->
              let u = Sw.ring_used_entry_off (h.used_next mod qsize) in
              ignore (ctx_poke h.h ~off:u ~width:4 (Int64.of_int id));
              ignore (ctx_poke h.h ~off:(u + 4) ~width:4 (Int64.of_int len));
              h.used_next <- (h.used_next + 1) land 0xFFFF;
              h.h_served <- h.h_served + 1;
              incr completions;
              (* One doorbell MMIO exit (and its status-read sibling)
                 that never happened. *)
              inc h.h "sm.io.kicks_suppressed";
              h.h.charge "ring_host_service" h.h.cost.Cost.ring_host_service
        done;
        h.avail_seen <- (h.avail_seen + d) land 0xFFFF;
        if !completions > 0 then begin
          (* Publish the used index once for the whole batch. *)
          ignore
            (ctx_poke h.h ~off:Sw.ring_used_idx_off ~width:4
               (Int64.of_int h.used_next));
          h.h_notifications <- h.h_notifications + 1;
          h.h.charge "ring_notify" h.h.cost.Cost.ring_notify
        end;
        !completions
  end
