open Riscv

let sid = 3
let sector_size = 512

type t = {
  bus : Bus.t;
  disk : Bytes.t;
  mutable translate : int64 -> int64 option;
  mutable desc_gpa : int64;
  mutable status : int64;
  mutable requests : int;
  mutable bytes_r : int;
  mutable bytes_w : int;
  mutable trace : Metrics.Trace.t option;
}

let create ~bus ~capacity_sectors =
  if capacity_sectors <= 0 then
    invalid_arg "Virtio_blk.create: non-positive capacity";
  {
    bus;
    disk = Bytes.make (capacity_sectors * sector_size) '\x00';
    translate = (fun _ -> None);
    desc_gpa = 0L;
    status = 0L;
    requests = 0;
    bytes_r = 0;
    bytes_w = 0;
    trace = None;
  }

let set_translate t f = t.translate <- f
let set_trace t tr = t.trace <- Some tr

let obs t =
  match t.trace with
  | Some tr when Metrics.Trace.is_enabled tr -> Some tr
  | _ -> None

(* Read [len] bytes of guest memory at a shared GPA, page by page,
   through DMA (IOPMP-checked). *)
let dma_read_gpa t gpa len =
  let buf = Buffer.create len in
  let rec go off =
    if off >= len then Some (Buffer.contents buf)
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match t.translate g with
      | None -> None
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Buffer.add_string buf (Bus.dma_read t.bus ~sid pa chunk);
          go (off + chunk)
    end
  in
  go 0

let dma_write_gpa t gpa data =
  let len = String.length data in
  let rec go off =
    if off >= len then true
    else begin
      let g = Int64.add gpa (Int64.of_int off) in
      match t.translate g with
      | None -> false
      | Some pa ->
          let in_page = 4096 - Int64.to_int (Int64.logand g 0xFFFL) in
          let chunk = min in_page (len - off) in
          Bus.dma_write t.bus ~sid pa (String.sub data off chunk);
          go (off + chunk)
    end
  in
  go 0

let le_u64 s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code s.[off + i]))
  done;
  !v

let le_u32 s off = Int64.to_int (Int64.logand (le_u64 s off) 0xFFFFFFFFL)

(* Overflow-safe bounds check for a guest-controlled sector/len pair:
   [sector * sector_size + len] is never formed until the quotient test
   proves the product fits inside the disk, so a sector near max_int
   cannot wrap negative and slip past the comparison. *)
let bounds_ok t ~sector ~len =
  let disk_len = Bytes.length t.disk in
  sector >= 0 && len >= 0 && len <= disk_len
  && sector <= (disk_len - len) / sector_size

let process t =
  let tr = obs t in
  (match tr with
  | Some tr -> Metrics.Trace.span_begin tr "blk.request"
  | None -> ());
  t.status <- 1L (* error until proven otherwise *);
  let detail =
    match dma_read_gpa t t.desc_gpa 24 with
    | None -> []
    | Some desc ->
        let sector = Int64.to_int (le_u64 desc 0) in
        let len = le_u32 desc 8 in
        let op = le_u32 desc 12 in
        let data_gpa = le_u64 desc 16 in
        (if not (bounds_ok t ~sector ~len) then ()
         else
           let disk_off = sector * sector_size in
           if op = 0 then begin
             (* device -> guest *)
             let data = Bytes.sub_string t.disk disk_off len in
             if dma_write_gpa t data_gpa data then begin
               t.requests <- t.requests + 1;
               t.bytes_r <- t.bytes_r + len;
               t.status <- 0L
             end
           end
           else if op = 1 then begin
             match dma_read_gpa t data_gpa len with
             | None -> ()
             | Some data ->
                 Bytes.blit_string data 0 t.disk disk_off len;
                 t.requests <- t.requests + 1;
                 t.bytes_w <- t.bytes_w + len;
                 t.status <- 0L
           end);
        [
          ("sector", string_of_int sector);
          ("len", string_of_int len);
          ("op", if op = 0 then "read" else if op = 1 then "write"
                 else string_of_int op);
        ]
  in
  match tr with
  | Some tr ->
      Metrics.Trace.span_end tr
        ~args:(detail @ [ ("status", Int64.to_string t.status) ])
        "blk.request"
  | None -> ()

(* Non-MMIO service entry for the exitless ring: same DMA path, bounds
   checks and counters as [process], but descriptor fields come from a
   ring descriptor instead of the register file. May raise [Bus.Fault]
   from the IOPMP-checked DMA (the caller treats that as a reject). *)
let serve_ring t ~write ~sector ~len ~data_gpa =
  if not (bounds_ok t ~sector ~len) then Error "blk.bounds"
  else begin
    let disk_off = sector * sector_size in
    if not write then begin
      let data = Bytes.sub_string t.disk disk_off len in
      if dma_write_gpa t data_gpa data then begin
        t.requests <- t.requests + 1;
        t.bytes_r <- t.bytes_r + len;
        Ok len
      end
      else Error "blk.dma"
    end
    else
      match dma_read_gpa t data_gpa len with
      | None -> Error "blk.dma"
      | Some data ->
          Bytes.blit_string data 0 t.disk disk_off len;
          t.requests <- t.requests + 1;
          t.bytes_w <- t.bytes_w + len;
          Ok len
  end

let mmio_read t off _len =
  match Int64.to_int off with 0x10 -> t.status | _ -> 0L

let mmio_write t off _len v =
  match Int64.to_int off with
  | 0x00 -> t.desc_gpa <- v
  | 0x08 -> process t
  | _ -> ()

let requests_served t = t.requests
let bytes_read t = t.bytes_r
let bytes_written t = t.bytes_w

let read_backing t ~sector ~len =
  Bytes.sub_string t.disk (sector * sector_size) len

let write_backing t ~sector data =
  Bytes.blit_string data 0 t.disk (sector * sector_size)
    (String.length data)
