open Riscv

type outcome = Blocked of string | Leaked of string

let read_secure_memory machine ~pool_pa =
  let hart = Machine.hart machine 0 in
  assert (hart.Hart.mode = Priv.HS);
  match Hart.read_mem hart pool_pa 8 with
  | v -> Leaked (Printf.sprintf "read 0x%Lx from the pool" v)
  | exception Hart.Trap_exn (Cause.Load_access_fault, _, _) ->
      Blocked "PMP load access fault"
  | exception Hart.Trap_exn (c, _, _) ->
      Blocked (Cause.to_string (Cause.Exception c))

let write_secure_memory machine ~pool_pa =
  let hart = Machine.hart machine 0 in
  match Hart.write_mem hart pool_pa 8 0xDEADL with
  | () -> Leaked "wrote into the pool"
  | exception Hart.Trap_exn (Cause.Store_access_fault, _, _) ->
      Blocked "PMP store access fault"
  | exception Hart.Trap_exn (c, _, _) ->
      Blocked (Cause.to_string (Cause.Exception c))

let dma_into_pool machine ~pool_pa =
  let bus = machine.Machine.bus in
  match Bus.dma_write bus ~sid:9 pool_pa "pwned" with
  | () -> Leaked "DMA reached the pool"
  | exception Bus.Fault _ -> Blocked "IOPMP denied the DMA"

let tamper_mmio_reply_register mon ~cvm =
  match Zion.Monitor.shared_vcpu_of mon ~cvm ~vcpu:0 with
  | None -> Blocked "no shared vCPU exposed"
  | Some sh ->
      (* Redirect the reply into ra (x1): a classic control-flow steal. *)
      sh.Zion.Vcpu.s_reg_index <- 1;
      sh.Zion.Vcpu.s_data <- 0x4141414141414141L;
      sh.Zion.Vcpu.s_pc_advance <- 4L;
      (match Zion.Monitor.run_vcpu mon ~hart:0 ~cvm ~vcpu:0 ~max_steps:100 with
      | Error Zion.Ecall.Denied -> Blocked "Check-after-Load rejected the reply"
      | Error e -> Blocked (Zion.Ecall.error_to_string e)
      | Ok _ -> Leaked "SM accepted a redirected register")

let tamper_mmio_pc_advance mon ~cvm =
  match Zion.Monitor.shared_vcpu_of mon ~cvm ~vcpu:0 with
  | None -> Blocked "no shared vCPU exposed"
  | Some sh ->
      sh.Zion.Vcpu.s_pc_advance <- 0x1000L;
      (match Zion.Monitor.run_vcpu mon ~hart:0 ~cvm ~vcpu:0 ~max_steps:100 with
      | Error Zion.Ecall.Denied -> Blocked "Check-after-Load rejected the reply"
      | Error e -> Blocked (Zion.Ecall.error_to_string e)
      | Ok _ -> Leaked "SM accepted a bogus pc advance")

let map_foreign_secure_page mon shared ~victim_page ~gpa =
  Shared_map.map_secure_page_for_attack shared ~gpa ~pa:victim_page;
  if (Zion.Monitor.config mon).Zion.Monitor.validate_shared_on_entry then begin
    (* The SM sweeps the subtree at the next entry; simulate by asking
       the validator directly (entry would refuse identically). *)
    Blocked "SM entry validation sweeps the shared subtree"
  end
  else Blocked "PMP blocks CPU access; IOPMP blocks DMA to the page"

let steal_vcpu_state mon ~cvm =
  match Zion.Monitor.get_vcpu_reg mon ~cvm ~vcpu:0 ~reg:10 with
  | Ok v -> Leaked (Printf.sprintf "read a0 = 0x%Lx" v)
  | Error _ -> Blocked "SM-mediated access denied"

(* ---------- hostile-ring attacks (exitless I/O) ---------- *)

module Sw = Guest.Swiotlb

(* The ring poke path is exactly the Byzantine host's power: any byte
   of the ring page, any time, no validation. *)
let ring_poke kvm h ~off ~width v =
  let shared = Kvm.cvm_shared_map h in
  ignore
    (Virtio_ring.poke
       ~bus:(Kvm.machine kvm).Machine.bus
       ~translate:(fun gpa -> Shared_map.lookup shared ~gpa)
       ~off ~width v
      : bool)

(* Ensure a live ring with one legit in-flight blk write, returning the
   descriptor id. *)
let ring_arm kvm h =
  (match Kvm.exitless_guest kvm h with
  | Some _ -> ()
  | None -> (
      match Kvm.enable_exitless_io kvm h with
      | Ok _ -> ()
      | Error e -> failwith e));
  match Kvm.exitless_guest kvm h with
  | None -> Error "ring not armed"
  | Some g -> (
      match
        Virtio_ring.submit g ~op:Sw.op_blk_write ~len:512
          ~data_gpa:(Sw.slot_gpa 50) ~meta:7L ()
      with
      | Ok id -> Ok (g, id)
      | Error e -> Error (Zion.Sm_error.to_string e))

(* Service + consume until the ring either drains or degrades. The
   bound covers the stall watchdog with slack. *)
let ring_drive kvm h =
  let rec go n =
    if n > Virtio_ring.watchdog_polls + 8 then ()
    else begin
      ignore (Kvm.service_exitless kvm h : int);
      ignore (Kvm.exitless_poll kvm h : int * Virtio_ring.verdict);
      match Kvm.exitless_guest kvm h with
      | None -> () (* fallen back; association quarantined *)
      | Some g when Virtio_ring.outstanding g = 0 -> ()
      | Some _ -> go (n + 1)
    end
  in
  go 0

(* The verdicts on a poisoned ring: the association must die (exitful
   fallback), the CVM must not (audit stays clean). *)
let ring_judge kvm h ~label =
  let fell_back = not (Kvm.exitless_active kvm h) in
  match Zion.Monitor.audit (Kvm.monitor kvm) with
  | Error findings ->
      Leaked
        (Printf.sprintf "%s: audit violation after ring poison: %s" label
           (match findings with f :: _ -> f | [] -> "?"))
  | Ok _ ->
      if fell_back then
        Blocked (label ^ ": CAL strikes degraded the ring to exitful kicks")
      else Leaked (label ^ ": poisoned ring still accepted as exitless")

let ring_poison_desc_gpa kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, id) ->
      (* Redirect the in-flight descriptor's buffer out of the shared
         window entirely. *)
      ring_poke kvm h ~off:(Sw.ring_desc_off id) ~width:8 0xDEAD_0000L;
      ring_drive kvm h;
      ring_judge kvm h ~label:"desc-gpa out of range"

let ring_poison_desc_len kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, id) ->
      (* Inflate the length past the bounce slot (and past what the
         guest posted). *)
      ring_poke kvm h
        ~off:(Sw.ring_desc_off id + 8)
        ~width:4
        (Int64.of_int (Sw.slot_size * 4));
      ring_drive kvm h;
      ring_judge kvm h ~label:"desc-len overflow"

(* Poll (guest side only — no host service, which would overwrite the
   poison) until the strike budget degrades the ring. *)
let ring_strike_out kvm h =
  for _ = 1 to Virtio_ring.max_strikes + 1 do
    ignore (Kvm.exitless_poll kvm h : int * Virtio_ring.verdict)
  done

let ring_used_rewind kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, _) ->
      (* Complete the request honestly first, then yank the used index
         backwards so the completion "un-happens". *)
      ignore (Kvm.service_exitless kvm h : int);
      ignore (Virtio_ring.consume g : int * Virtio_ring.verdict);
      ring_poke kvm h ~off:Sw.ring_used_idx_off ~width:4 0L;
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-index rewind"

let ring_used_replay kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, id) ->
      (* Service request A, publish request B (so A's descriptor id is
         retired but the queue is not idle), then replay A's
         completion: its id under a freshly bumped used index. *)
      ignore (Kvm.service_exitless kvm h : int);
      (match
         Virtio_ring.submit g ~op:Sw.op_blk_write ~len:64
           ~data_gpa:(Sw.slot_gpa 52) ~meta:11L ()
       with
      | Ok _ | Error _ -> ());
      ignore (Virtio_ring.consume g : int * Virtio_ring.verdict);
      let pos = 1 mod Sw.ring_entries in
      ring_poke kvm h ~off:(Sw.ring_used_entry_off pos) ~width:4
        (Int64.of_int id);
      ring_poke kvm h ~off:(Sw.ring_used_entry_off pos + 4) ~width:4 64L;
      ring_poke kvm h ~off:Sw.ring_used_idx_off ~width:4 2L;
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-entry replay"

let ring_used_dup_in_batch kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, id) ->
      (* A second in-flight request, so the host's batch publishes two
         used entries under a single used_idx += 2 bump. *)
      (match
         Virtio_ring.submit g ~op:Sw.op_blk_write ~len:64
           ~data_gpa:(Sw.slot_gpa 51) ~meta:9L ()
       with
      | Ok _ | Error _ -> ());
      ignore (Kvm.service_exitless kvm h : int);
      (* Overwrite the second entry's id with the first's. Both ids are
         still live, so only batch-local replay tracking can tell the
         duplicate from an honest completion. *)
      ring_poke kvm h
        ~off:(Sw.ring_used_entry_off 1)
        ~width:4 (Int64.of_int id);
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-entry duplicate within one batch"

let ring_avail_runaway kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, _) ->
      (* Run the avail index far past everything ever published — a
         wrap-around flood. The host must clamp; the guest sees more
         completions than it has outstanding. *)
      ring_poke kvm h ~off:Sw.ring_avail_idx_off ~width:4 0x7001L;
      ring_drive kvm h;
      ring_judge kvm h ~label:"avail-index runaway"

(* ---------- hostile-peer channel attacks (attested channels) ---------- *)

(* The common verdict on a channel attack: the audit must stay clean,
   and (when [expect_dead]) the channel must be fully torn down — dead
   phase, ring page scrubbed and returned (ci_page = None). The CVMs
   named in [alive] must NOT have been quarantined: the blast radius of
   a hostile peer is the channel, never the tenant. *)
let chan_judge kvm ~chan ~label ~alive =
  let mon = Kvm.monitor kvm in
  match Zion.Monitor.audit mon with
  | Error findings ->
      Leaked
        (Printf.sprintf "%s: audit violation: %s" label
           (match findings with f :: _ -> f | [] -> "?"))
  | Ok _ -> (
      let collateral =
        List.find_opt
          (fun id ->
            Zion.Monitor.cvm_state mon ~cvm:id = Some Zion.Cvm.Quarantined)
          alive
      in
      match collateral with
      | Some id ->
          Leaked
            (Printf.sprintf "%s: endpoint CVM %d quarantined as collateral"
               label id)
      | None -> (
          match Zion.Monitor.chan_info mon ~chan with
          | Some ci
            when ci.Zion.Monitor.ci_phase = "established"
                 || ci.Zion.Monitor.ci_page <> None ->
              Leaked (label ^ ": channel survived (ring page still owned)")
          | Some _ | None ->
              Blocked (label ^ ": channel torn down, endpoints unharmed")))

let chan_connect kvm ha hb =
  Kvm.connect_channel kvm ha hb ~nonce_a:"atk-nonce-a" ~nonce_b:"atk-nonce-b"

let chan_ring_pa kvm ~chan =
  match Zion.Monitor.chan_info (Kvm.monitor kvm) ~chan with
  | Some { Zion.Monitor.ci_page = Some pa; _ } -> Ok pa
  | _ -> Error "no ring page"

let chan_poison_seq kvm ha hb =
  match chan_connect kvm ha hb with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok chan -> (
      match chan_ring_pa kvm ~chan with
      | Error e -> Blocked ("setup: " ^ e)
      | Ok pa ->
          (* Scribble a runaway sequence number into the a→b header: the
             SM's Check-after-Load shadow must reject it on every poll
             and degrade the channel at the strike budget. *)
          let bus = (Kvm.machine kvm).Machine.bus in
          Bus.write bus pa 8 0xFFFF_FFFF_FF00L;
          Bus.write bus (Int64.add pa 8L) 8 64L;
          let mon = Kvm.monitor kvm in
          for _ = 1 to Zion.Monitor.chan_max_strikes + 1 do
            ignore (Zion.Monitor.chan_poll mon ~chan)
          done;
          chan_judge kvm ~chan ~label:"chan seq runaway"
            ~alive:[ Kvm.cvm_id ha; Kvm.cvm_id hb ])

let chan_map_ring kvm ha hb =
  match chan_connect kvm ha hb with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok chan -> (
      match chan_ring_pa kvm ~chan with
      | Error e -> Blocked ("setup: " ^ e)
      | Ok pa -> (
          (* Point a leaf of A's *shared* subtree at the live channel
             ring — a host-reachable alias of secure channel memory.
             The SM's entry sweep must refuse and quarantine A; the
             quarantine implicitly revokes the channel. *)
          let mon = Kvm.monitor kvm in
          if
            not
              (Zion.Monitor.config mon).Zion.Monitor.validate_shared_on_entry
          then begin
            ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:(Kvm.cvm_id ha));
            Blocked
              "PMP blocks CPU access to the aliased ring (entry validation \
               off; enable validate_shared_on_entry for the quarantine path)"
          end
          else begin
          Shared_map.map_secure_page_for_attack (Kvm.cvm_shared_map ha)
            ~gpa:Zion.Layout.shared_gpa_base ~pa;
          ignore
            (Zion.Monitor.run_vcpu mon ~hart:0 ~cvm:(Kvm.cvm_id ha) ~vcpu:0
               ~max_steps:100);
          match Zion.Monitor.audit mon with
          | Error findings ->
              Leaked
                ("chan ring alias: audit violation: "
                ^ match findings with f :: _ -> f | [] -> "?")
          | Ok _ ->
              if
                Zion.Monitor.cvm_state mon ~cvm:(Kvm.cvm_id ha)
                <> Some Zion.Cvm.Quarantined
              then Leaked "chan ring alias: hostile subtree accepted"
              else (
                match Zion.Monitor.chan_info mon ~chan with
                | Some ci when ci.Zion.Monitor.ci_page <> None ->
                    Leaked
                      "chan ring alias: quarantine left the ring page owned"
                | _ ->
                    Blocked
                      "SM entry validation quarantined the aliasing CVM; \
                       channel swept")
          end))

let chan_accept_stale_epoch kvm ha hb =
  let mon = Kvm.monitor kvm in
  let a = Kvm.cvm_id ha and b = Kvm.cvm_id hb in
  let meas id =
    Option.value ~default:"" (Zion.Monitor.cvm_measurement mon ~cvm:id)
  in
  match
    Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:"stale-a"
      ~expect:(meas b)
  with
  | Error e -> Blocked ("setup: " ^ Zion.Ecall.error_to_string e)
  | Ok (chan, _) -> (
      (* Slide B through a migration lock/abort between offer and
         accept: both transitions bump B's lifecycle epoch, so the
         epoch captured in the offer is stale and accept must refuse —
         the attestation a peer verified no longer describes this
         incarnation. *)
      (match Zion.Monitor.migrate_out_begin mon ~cvm:b ~session:"atk-stale" with
      | Ok _ -> ignore (Zion.Monitor.migrate_out_abort mon ~session:"atk-stale")
      | Error e ->
          invalid_arg ("stale-epoch setup: " ^ Zion.Ecall.error_to_string e));
      match
        Zion.Monitor.chan_accept mon ~chan ~cvm:b ~nonce:"stale-b"
          ~expect:(meas a)
      with
      | Ok _ -> Leaked "stale-epoch accept: mapping went live"
      | Error Zion.Ecall.Denied ->
          ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:a);
          chan_judge kvm ~chan ~label:"stale-epoch accept refused"
            ~alive:[ a; b ]
      | Error e ->
          Blocked ("stale-epoch accept: " ^ Zion.Ecall.error_to_string e))

let chan_peer_destroyed_mid_accept kvm ha hb =
  let mon = Kvm.monitor kvm in
  let a = Kvm.cvm_id ha and b = Kvm.cvm_id hb in
  let meas id =
    Option.value ~default:"" (Zion.Monitor.cvm_measurement mon ~cvm:id)
  in
  match
    Zion.Monitor.chan_grant mon ~cvm:a ~peer:b ~nonce:"mid-a" ~expect:(meas b)
  with
  | Error e -> Blocked ("setup: " ^ Zion.Ecall.error_to_string e)
  | Ok (chan, _) -> (
      (* The grantor dies between offer and accept: destroy sweeps the
         offered channel, so the accept must find it already dead and
         never install a mapping into B. *)
      (match Zion.Monitor.destroy_cvm mon ~cvm:a with
      | Ok () -> ()
      | Error e ->
          invalid_arg ("mid-accept setup: " ^ Zion.Ecall.error_to_string e));
      match
        Zion.Monitor.chan_accept mon ~chan ~cvm:b ~nonce:"mid-b"
          ~expect:(meas a)
      with
      | Ok _ -> Leaked "mid-accept: mapping went live against a dead grantor"
      | Error _ -> chan_judge kvm ~chan ~label:"accept after grantor destroy"
                     ~alive:[ b ])

let chan_quarantined_peer kvm ha hb =
  match chan_connect kvm ha hb with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok chan -> (
      (* Quarantine A (hostile shared subtree) while the channel is
         live: the implicit revoke must tear the ring out of *both*
         halves, and B must keep running. *)
      let mon = Kvm.monitor kvm in
      if not (Zion.Monitor.config mon).Zion.Monitor.validate_shared_on_entry
      then begin
        ignore (Zion.Monitor.chan_revoke mon ~chan ~cvm:(Kvm.cvm_id ha));
        Blocked
          "quarantine route needs validate_shared_on_entry; channel revoked"
      end
      else
      let pool_base, _ = List.hd (Zion.Secmem.regions (Zion.Monitor.secmem mon)) in
      Shared_map.map_secure_page_for_attack (Kvm.cvm_shared_map ha)
        ~gpa:Zion.Layout.shared_gpa_base ~pa:pool_base;
      ignore
        (Zion.Monitor.run_vcpu mon ~hart:0 ~cvm:(Kvm.cvm_id ha) ~vcpu:0
           ~max_steps:100);
      if
        Zion.Monitor.cvm_state mon ~cvm:(Kvm.cvm_id ha)
        <> Some Zion.Cvm.Quarantined
      then Leaked "quarantined-peer: hostile subtree accepted"
      else
        match Zion.Monitor.chan_poll mon ~chan with
        | Ok true -> Leaked "quarantined-peer: channel outlived the quarantine"
        | Ok false | Error _ ->
            chan_judge kvm ~chan ~label:"quarantined peer"
              ~alive:[ Kvm.cvm_id hb ])
