open Riscv

type outcome = Blocked of string | Leaked of string

let read_secure_memory machine ~pool_pa =
  let hart = Machine.hart machine 0 in
  assert (hart.Hart.mode = Priv.HS);
  match Hart.read_mem hart pool_pa 8 with
  | v -> Leaked (Printf.sprintf "read 0x%Lx from the pool" v)
  | exception Hart.Trap_exn (Cause.Load_access_fault, _, _) ->
      Blocked "PMP load access fault"
  | exception Hart.Trap_exn (c, _, _) ->
      Blocked (Cause.to_string (Cause.Exception c))

let write_secure_memory machine ~pool_pa =
  let hart = Machine.hart machine 0 in
  match Hart.write_mem hart pool_pa 8 0xDEADL with
  | () -> Leaked "wrote into the pool"
  | exception Hart.Trap_exn (Cause.Store_access_fault, _, _) ->
      Blocked "PMP store access fault"
  | exception Hart.Trap_exn (c, _, _) ->
      Blocked (Cause.to_string (Cause.Exception c))

let dma_into_pool machine ~pool_pa =
  let bus = machine.Machine.bus in
  match Bus.dma_write bus ~sid:9 pool_pa "pwned" with
  | () -> Leaked "DMA reached the pool"
  | exception Bus.Fault _ -> Blocked "IOPMP denied the DMA"

let tamper_mmio_reply_register mon ~cvm =
  match Zion.Monitor.shared_vcpu_of mon ~cvm ~vcpu:0 with
  | None -> Blocked "no shared vCPU exposed"
  | Some sh ->
      (* Redirect the reply into ra (x1): a classic control-flow steal. *)
      sh.Zion.Vcpu.s_reg_index <- 1;
      sh.Zion.Vcpu.s_data <- 0x4141414141414141L;
      sh.Zion.Vcpu.s_pc_advance <- 4L;
      (match Zion.Monitor.run_vcpu mon ~hart:0 ~cvm ~vcpu:0 ~max_steps:100 with
      | Error Zion.Ecall.Denied -> Blocked "Check-after-Load rejected the reply"
      | Error e -> Blocked (Zion.Ecall.error_to_string e)
      | Ok _ -> Leaked "SM accepted a redirected register")

let tamper_mmio_pc_advance mon ~cvm =
  match Zion.Monitor.shared_vcpu_of mon ~cvm ~vcpu:0 with
  | None -> Blocked "no shared vCPU exposed"
  | Some sh ->
      sh.Zion.Vcpu.s_pc_advance <- 0x1000L;
      (match Zion.Monitor.run_vcpu mon ~hart:0 ~cvm ~vcpu:0 ~max_steps:100 with
      | Error Zion.Ecall.Denied -> Blocked "Check-after-Load rejected the reply"
      | Error e -> Blocked (Zion.Ecall.error_to_string e)
      | Ok _ -> Leaked "SM accepted a bogus pc advance")

let map_foreign_secure_page mon shared ~victim_page ~gpa =
  Shared_map.map_secure_page_for_attack shared ~gpa ~pa:victim_page;
  if (Zion.Monitor.config mon).Zion.Monitor.validate_shared_on_entry then begin
    (* The SM sweeps the subtree at the next entry; simulate by asking
       the validator directly (entry would refuse identically). *)
    Blocked "SM entry validation sweeps the shared subtree"
  end
  else Blocked "PMP blocks CPU access; IOPMP blocks DMA to the page"

let steal_vcpu_state mon ~cvm =
  match Zion.Monitor.get_vcpu_reg mon ~cvm ~vcpu:0 ~reg:10 with
  | Ok v -> Leaked (Printf.sprintf "read a0 = 0x%Lx" v)
  | Error _ -> Blocked "SM-mediated access denied"

(* ---------- hostile-ring attacks (exitless I/O) ---------- *)

module Sw = Guest.Swiotlb

(* The ring poke path is exactly the Byzantine host's power: any byte
   of the ring page, any time, no validation. *)
let ring_poke kvm h ~off ~width v =
  let shared = Kvm.cvm_shared_map h in
  ignore
    (Virtio_ring.poke
       ~bus:(Kvm.machine kvm).Machine.bus
       ~translate:(fun gpa -> Shared_map.lookup shared ~gpa)
       ~off ~width v
      : bool)

(* Ensure a live ring with one legit in-flight blk write, returning the
   descriptor id. *)
let ring_arm kvm h =
  (match Kvm.exitless_guest kvm h with
  | Some _ -> ()
  | None -> (
      match Kvm.enable_exitless_io kvm h with
      | Ok _ -> ()
      | Error e -> failwith e));
  match Kvm.exitless_guest kvm h with
  | None -> Error "ring not armed"
  | Some g -> (
      match
        Virtio_ring.submit g ~op:Sw.op_blk_write ~len:512
          ~data_gpa:(Sw.slot_gpa 50) ~meta:7L ()
      with
      | Ok id -> Ok (g, id)
      | Error e -> Error (Zion.Sm_error.to_string e))

(* Service + consume until the ring either drains or degrades. The
   bound covers the stall watchdog with slack. *)
let ring_drive kvm h =
  let rec go n =
    if n > Virtio_ring.watchdog_polls + 8 then ()
    else begin
      ignore (Kvm.service_exitless kvm h : int);
      ignore (Kvm.exitless_poll kvm h : int * Virtio_ring.verdict);
      match Kvm.exitless_guest kvm h with
      | None -> () (* fallen back; association quarantined *)
      | Some g when Virtio_ring.outstanding g = 0 -> ()
      | Some _ -> go (n + 1)
    end
  in
  go 0

(* The verdicts on a poisoned ring: the association must die (exitful
   fallback), the CVM must not (audit stays clean). *)
let ring_judge kvm h ~label =
  let fell_back = not (Kvm.exitless_active kvm h) in
  match Zion.Monitor.audit (Kvm.monitor kvm) with
  | Error findings ->
      Leaked
        (Printf.sprintf "%s: audit violation after ring poison: %s" label
           (match findings with f :: _ -> f | [] -> "?"))
  | Ok _ ->
      if fell_back then
        Blocked (label ^ ": CAL strikes degraded the ring to exitful kicks")
      else Leaked (label ^ ": poisoned ring still accepted as exitless")

let ring_poison_desc_gpa kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, id) ->
      (* Redirect the in-flight descriptor's buffer out of the shared
         window entirely. *)
      ring_poke kvm h ~off:(Sw.ring_desc_off id) ~width:8 0xDEAD_0000L;
      ring_drive kvm h;
      ring_judge kvm h ~label:"desc-gpa out of range"

let ring_poison_desc_len kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, id) ->
      (* Inflate the length past the bounce slot (and past what the
         guest posted). *)
      ring_poke kvm h
        ~off:(Sw.ring_desc_off id + 8)
        ~width:4
        (Int64.of_int (Sw.slot_size * 4));
      ring_drive kvm h;
      ring_judge kvm h ~label:"desc-len overflow"

(* Poll (guest side only — no host service, which would overwrite the
   poison) until the strike budget degrades the ring. *)
let ring_strike_out kvm h =
  for _ = 1 to Virtio_ring.max_strikes + 1 do
    ignore (Kvm.exitless_poll kvm h : int * Virtio_ring.verdict)
  done

let ring_used_rewind kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, _) ->
      (* Complete the request honestly first, then yank the used index
         backwards so the completion "un-happens". *)
      ignore (Kvm.service_exitless kvm h : int);
      ignore (Virtio_ring.consume g : int * Virtio_ring.verdict);
      ring_poke kvm h ~off:Sw.ring_used_idx_off ~width:4 0L;
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-index rewind"

let ring_used_replay kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, id) ->
      (* Service request A, publish request B (so A's descriptor id is
         retired but the queue is not idle), then replay A's
         completion: its id under a freshly bumped used index. *)
      ignore (Kvm.service_exitless kvm h : int);
      (match
         Virtio_ring.submit g ~op:Sw.op_blk_write ~len:64
           ~data_gpa:(Sw.slot_gpa 52) ~meta:11L ()
       with
      | Ok _ | Error _ -> ());
      ignore (Virtio_ring.consume g : int * Virtio_ring.verdict);
      let pos = 1 mod Sw.ring_entries in
      ring_poke kvm h ~off:(Sw.ring_used_entry_off pos) ~width:4
        (Int64.of_int id);
      ring_poke kvm h ~off:(Sw.ring_used_entry_off pos + 4) ~width:4 64L;
      ring_poke kvm h ~off:Sw.ring_used_idx_off ~width:4 2L;
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-entry replay"

let ring_used_dup_in_batch kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (g, id) ->
      (* A second in-flight request, so the host's batch publishes two
         used entries under a single used_idx += 2 bump. *)
      (match
         Virtio_ring.submit g ~op:Sw.op_blk_write ~len:64
           ~data_gpa:(Sw.slot_gpa 51) ~meta:9L ()
       with
      | Ok _ | Error _ -> ());
      ignore (Kvm.service_exitless kvm h : int);
      (* Overwrite the second entry's id with the first's. Both ids are
         still live, so only batch-local replay tracking can tell the
         duplicate from an honest completion. *)
      ring_poke kvm h
        ~off:(Sw.ring_used_entry_off 1)
        ~width:4 (Int64.of_int id);
      ring_strike_out kvm h;
      ring_judge kvm h ~label:"used-entry duplicate within one batch"

let ring_avail_runaway kvm h =
  match ring_arm kvm h with
  | Error e -> Blocked ("setup: " ^ e)
  | Ok (_, _) ->
      (* Run the avail index far past everything ever published — a
         wrap-around flood. The host must clamp; the guest sees more
         completions than it has outstanding. *)
      ring_poke kvm h ~off:Sw.ring_avail_idx_off ~width:4 0x7001L;
      ring_drive kvm h;
      ring_judge kvm h ~label:"avail-index runaway"
