(** Virtio-style block device (QEMU-side emulation).

    The guest programs a fixed descriptor address, fills a 24-byte
    descriptor in shared memory — sector, length, operation, data-buffer
    GPA — and kicks the device with an MMIO write. The device translates
    the shared GPAs through the hypervisor's shared-region map and moves
    the data by DMA, which the IOPMP checks: a descriptor that smuggles a
    secure-pool address faults instead of leaking.

    Register map (offsets within the device's MMIO slot):
    - [0x00] (write, 8 B): descriptor GPA
    - [0x08] (write, 4 B): kick — process the descriptor synchronously
    - [0x10] (read, 4 B): status of the last operation (0 = OK)

    Descriptor layout: sector (8 B) | byte length (4 B) | op (4 B,
    0 = read, 1 = write) | data GPA (8 B). *)

type t

val sid : int
(** Bus-master source id used for IOPMP checks. *)

val create : bus:Riscv.Bus.t -> capacity_sectors:int -> t

val set_translate : t -> (int64 -> int64 option) -> unit
(** Install the GPA→PA translation (the hypervisor's shared map for a
    CVM; an identity-ish map for a normal VM). *)

val set_trace : t -> Metrics.Trace.t -> unit
(** Attach the platform flight recorder. While it is enabled every
    kick emits a ["blk.request"] span whose end event carries
    [sector]/[len]/[op]/[status] args, stamped with whatever span
    context the workload installed on the trace. *)

val mmio_read : t -> int64 -> int -> int64
val mmio_write : t -> int64 -> int -> int64 -> unit

val requests_served : t -> int
val bytes_read : t -> int
val bytes_written : t -> int

val serve_ring :
  t ->
  write:bool ->
  sector:int ->
  len:int ->
  data_gpa:int64 ->
  (int, string) result
(** Service one exitless-ring descriptor: same bounds checks, DMA path
    and counters as an MMIO kick, without the register file. Returns
    the completed byte count or an error label; may raise
    [Riscv.Bus.Fault] when the IOPMP rejects the DMA. *)

val read_backing : t -> sector:int -> len:int -> string
(** Inspect the disk contents (tests). *)

val write_backing : t -> sector:int -> string -> unit
