(** Deterministic lossy channel: the untrusted courier carrying
    migration protocol messages between two monitors.

    A seeded splitmix64 PRNG decides every fault — drop, duplicate,
    reorder, corrupt, delay, partition — so a given (seed, faults) pair
    replays the exact same delivery schedule. One channel carries one
    direction; a migration uses a pair. *)

type faults = {
  drop : float;  (** per-message drop probability, [0,1] *)
  dup : float;  (** per-message duplication probability *)
  reorder : float;  (** probability a message is held back a few ticks *)
  corrupt : float;  (** per-message byte-flip probability *)
  delay_max : int;  (** extra delivery delay, uniform in [0, delay_max] *)
  partition : (int * int) list;
      (** inclusive tick windows during which every send is lost *)
}

val no_faults : faults

type stats = {
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable reordered : int;
  mutable corrupted : int;
  mutable partitioned : int;
}

type t

val create : ?faults:faults -> seed:int -> unit -> t

val send : t -> string -> unit
(** Submit a message; it is lost, mangled or queued per the fault
    schedule. Minimum delivery latency is one tick. *)

val tick : t -> string list
(** Advance the clock one tick and collect the messages due. *)

val now : t -> int
val pending : t -> int
val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
