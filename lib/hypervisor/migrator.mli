(** Migration driver: runs one crash-safe migration between two
    monitors over a pair of seeded lossy channels ({!Channel}), with
    optional crash injection at a chosen protocol step on either end.

    The crashed endpoint loses all courier state (timers, send window,
    reassembly buffer); after [recover_after] ticks it is rebuilt with
    [Zion.Migrate_proto.source_recover]/[dest_recover], which re-derive
    its position from the monitor's durable session record. The driver
    never touches the monitors itself — outcome and ownership are read
    back from them, the only authority. *)

type side = Source | Dest

val side_to_string : side -> string

type crash = {
  at : int;  (** crash when that side's event counter reaches this *)
  side : side;
}

type outcome =
  | Committed of int  (** destination CVM id now owning the guest *)
  | Aborted of string

type stats = {
  ticks : int;
  src_events : int;
  dst_events : int;
  chunks_sent : int;
  retransmits : int;
  chunks_recv : int;
  dup_chunks : int;
  rejected : int;
  crashes : int;
  recoveries : int;
  fwd : Channel.stats;
  rev : Channel.stats;
}

val pp_stats : Format.formatter -> stats -> unit

val owners :
  src:Zion.Monitor.t ->
  dst:Zion.Monitor.t ->
  cvm:int ->
  session:string ->
  bool * bool
(** (source owns, destination owns), read from the monitors: a side owns
    the guest iff it holds a current or future-runnable instance
    (a destination's uncommitted prepared copy does not count; a
    source's resumable [Migrating_out] lock does). *)

val handoff_clean :
  src:Zion.Monitor.t ->
  dst:Zion.Monitor.t ->
  cvm:int ->
  session:string ->
  ([ `Source | `Dest ], string) result
(** Exactly one owner, and the losing side holds nothing live for this
    migration (prepared-but-not-committed destination instance scrubbed,
    committed-away source instance destroyed). *)

val run :
  ?config:Zion.Migrate_proto.config ->
  ?faults:Channel.faults ->
  ?seed:int ->
  ?crash:crash ->
  ?recover_after:int ->
  ?max_ticks:int ->
  ?grace:int ->
  src:Zion.Monitor.t ->
  dst:Zion.Monitor.t ->
  cvm:int ->
  session:string ->
  unit ->
  (outcome * stats, string) result
(** Drive the migration to a terminal state. [grace] extra ticks run
    after the source terminates so terminal messages (Abort, Commit
    acks) can still drain through a lossy channel. [Error] means the
    protocol failed to terminate or an endpoint could not recover —
    both harness-level failures, distinct from a clean [Aborted]. *)
