(* Virtio through the split page table: a confidential VM does disk and
   network I/O with SWIOTLB bounce buffers in the hypervisor-managed
   shared region (§IV.E), while its private memory stays unreachable.

   Run with: dune exec examples/virtio_shared_io.exe *)

let () =
  print_endline "=== ZION virtio + SWIOTLB ===";
  let tb = Platform.Testbed.create () in
  let kvm = tb.Platform.Testbed.kvm in
  let mon = tb.Platform.Testbed.monitor in

  (* The guest: write a sector, read it back, send a packet, receive the
     peer's reply, then shut down. All payloads bounce through the
     shared region — the devices never see private memory. *)
  let program =
    Guest.Gprog.print "blk write status: "
    @ Guest.Gprog.blk_write ~sector:7 ~len:512 ~byte:'@'
    @ Guest.Gprog.print "\nfirst byte read back: "
    @ Guest.Gprog.blk_read_first_byte ~sector:7 ~len:512
    @ Guest.Gprog.print "\nnet: sending PING, reply starts with: "
    @ Guest.Gprog.net_send "PING"
    @ Guest.Gprog.net_recv_putchar
    @ Guest.Gprog.print "\n"
    @ Guest.Gprog.shutdown
  in
  let handle = Platform.Testbed.cvm tb program in

  (* The host-side peer answering the guest's packets. *)
  let net = Hypervisor.Mmio_emul.net (Hypervisor.Kvm.devices kvm) in
  Hypervisor.Virtio_net.set_peer net (fun pkt ->
      Printf.printf "host peer saw %S\n" pkt;
      Some ("PONG to " ^ pkt));

  (match
     Hypervisor.Kvm.run_cvm_to_completion kvm handle ~hart:0
       ~quantum:Platform.Testbed.quantum_cycles ~max_slices:100
   with
  | Hypervisor.Kvm.C_shutdown -> ()
  | _ -> failwith "guest did not shut down");

  Printf.printf "guest console:\n%s\n" (Zion.Monitor.console_output mon);

  let blk = Hypervisor.Mmio_emul.blk (Hypervisor.Kvm.devices kvm) in
  Printf.printf "disk sector 7 now holds: %S...\n"
    (Hypervisor.Virtio_blk.read_backing blk ~sector:7 ~len:8);
  Printf.printf "MMIO exits serviced by the hypervisor: %d\n"
    (Hypervisor.Kvm.mmio_exits_serviced kvm);
  Printf.printf "world switches: %d entries, every one re-validated\n"
    (List.length (Zion.Monitor.entry_cycles mon));

  (* The punchline: the same device, pointed at secure memory by a
     malicious translation, is stopped by the IOPMP. *)
  let pool =
    match Zion.Secmem.regions (Zion.Monitor.secmem mon) with
    | (base, _) :: _ -> base
    | [] -> failwith "no pool"
  in
  (match
     Riscv.Bus.dma_read tb.Platform.Testbed.machine.Riscv.Machine.bus
       ~sid:Hypervisor.Virtio_blk.sid pool 16
   with
  | _ -> print_endline "IOPMP FAILED — device read secure memory!"
  | exception Riscv.Bus.Fault _ ->
      print_endline "device DMA aimed at the secure pool: IOPMP fault (good)");

  (* ---------- exitless rings: the same I/O with no doorbells ---------- *)
  print_endline "\n=== exitless virtio ring ===";
  let tb2 = Platform.Testbed.create () in
  let kvm2 = tb2.Platform.Testbed.kvm in
  let batch = 8 in
  (* Eight block writes published with plain stores to the shared ring
     page, then one spin on the used index: the host services the whole
     batch at its next timer beat and publishes the index once. *)
  let prog2 =
    List.concat
      (List.init batch (fun seq ->
           Guest.Gprog.ring_blk_write ~seq ~sector:(100 + seq) ~len:128
             ~byte:(Char.chr (Char.code 'A' + seq))
             ~slot:(20 + seq)))
    @ Guest.Gprog.ring_wait_used ~target:batch
    @ Guest.Gprog.shutdown
  in
  let h2 = Platform.Testbed.cvm tb2 prog2 in
  (match Hypervisor.Kvm.enable_exitless_io kvm2 h2 with
  | Ok _ -> ()
  | Error e -> failwith e);
  (match
     Hypervisor.Kvm.run_cvm_to_completion kvm2 h2 ~hart:0 ~quantum:100_000
       ~max_slices:500
   with
  | Hypervisor.Kvm.C_shutdown -> ()
  | _ -> failwith "exitless guest did not shut down");
  let blk2 = Hypervisor.Mmio_emul.blk (Hypervisor.Kvm.devices kvm2) in
  Printf.printf "disk sector 100 now holds: %S...\n"
    (Hypervisor.Virtio_blk.read_backing blk2 ~sector:100 ~len:4);
  Printf.printf
    "%d requests, %d MMIO doorbells, %d used-index publishes\n" batch
    (Hypervisor.Kvm.mmio_exits_serviced kvm2)
    (match Hypervisor.Kvm.exitless_host kvm2 h2 with
    | Some host -> Hypervisor.Virtio_ring.notifications host
    | None -> 0);

  (* A Byzantine host rewrites a descriptor under the guest's feet:
     Check-after-Load strikes out and the association degrades to
     exitful kicks — the CVM itself keeps running. *)
  (match Hypervisor.Attacks.ring_poison_desc_len kvm2 h2 with
  | Hypervisor.Attacks.Blocked why -> Printf.printf "ring poison: %s\n" why
  | Hypervisor.Attacks.Leaked why ->
      Printf.printf "RING POISON LEAKED: %s\n" why);
  Printf.printf "exitless still bound: %b (fallback quarantined it)\n"
    (Hypervisor.Kvm.exitless_active kvm2 h2)
