(* Live migration: move a running confidential VM between two hosts
   without the (untrusted) hypervisors ever seeing its contents — over
   an unreliable courier, with a host crash in the middle.

   The source monitor seals vCPU state, measurement, and every private
   page into an encrypted+authenticated image; the migration protocol
   streams it as MAC'd chunks across a lossy channel, with ack/retry,
   recovery from the monitors' durable session records after a crash,
   and a two-phase ownership handoff: exactly one host owns the guest
   at the end, no matter what the channel or a crash did.

   This run injects both headline faults: a loss burst (a partition
   window during which every message is dropped) and a source-side
   crash with recovery.

   Run with: dune exec examples/migration.exe *)

open Riscv

let mib n = Int64.mul (Int64.of_int n) 0x100000L
let guest_entry = 0x10000L

let make_host name =
  let machine = Machine.create ~dram_size:(mib 256) () in
  let mon = Zion.Monitor.create machine in
  (match
     Zion.Monitor.register_secure_region mon
       ~base:(Int64.add Bus.dram_base (mib 128))
       ~size:(mib 8)
   with
  | Ok blocks -> Printf.printf "[%s] secure pool ready (%d blocks)\n" name blocks
  | Error e -> failwith (Zion.Ecall.error_to_string e));
  (machine, mon)

let () =
  print_endline "=== ZION live migration (lossy channel + source crash) ===";
  let machine_a, mon_a = make_host "host A" in
  let _, mon_b = make_host "host B" in

  (* A guest with state worth preserving: it counts work into memory,
     prints progress, and only says DONE when the loop completes. *)
  let prog =
    Guest.Gprog.print "guest: starting on host A\n"
    @ Asm.li Asm.t0 300_000L
    @ [
        Decode.Op_imm (Decode.Add, Asm.t0, Asm.t0, -1L);
        Decode.Branch (Decode.Bne, Asm.t0, 0, -4L);
      ]
    @ Guest.Gprog.print "guest: DONE (loop state survived the move)\n"
    @ Guest.Gprog.shutdown
  in
  let id_a =
    Result.get_ok (Zion.Monitor.create_cvm mon_a ~nvcpus:1 ~entry_pc:guest_entry)
  in
  Result.get_ok
    (Zion.Monitor.load_image mon_a ~cvm:id_a ~gpa:guest_entry
       (Asm.program prog))
  |> ignore;
  let measurement = Result.get_ok (Zion.Monitor.finalize_cvm mon_a ~cvm:id_a) in
  Printf.printf "[host A] CVM %d measurement %s...\n" id_a
    (String.sub (Crypto.Sha256.to_hex measurement) 0 16);

  (* Run one short quantum: the guest parks mid-loop. *)
  let hart = Machine.hart machine_a 0 in
  hart.Hart.csr.Csr.mie <- Int64.shift_left 1L 7;
  Clint.set_mtimecmp (Bus.clint machine_a.Machine.bus) 0
    (Int64.of_int (Metrics.Ledger.now machine_a.Machine.ledger + 80_000));
  (match
     Zion.Monitor.run_vcpu mon_a ~hart:0 ~cvm:id_a ~vcpu:0
       ~max_steps:10_000_000
   with
  | Ok Zion.Monitor.Exit_timer -> print_endline "[host A] quantum expired mid-loop"
  | _ -> failwith "expected a timer exit");
  print_string (Zion.Monitor.console_output mon_a);

  (* The courier is hostile weather: mild loss throughout, plus a
     partition window (ticks 8-28) during which every message is lost.
     And host A's hypervisor process dies at its 12th protocol event,
     coming back a few ticks later to recover the session from the
     monitor's durable record. *)
  let faults =
    {
      Hypervisor.Channel.no_faults with
      drop = 0.10;
      partition = [ (8, 28) ];
    }
  in
  let crash = { Hypervisor.Migrator.at = 12; side = Hypervisor.Migrator.Source } in
  print_endline
    "[courier] 10% loss, blackout ticks 8-28; host A will crash at event 12";
  let outcome, stats =
    match
      Hypervisor.Migrator.run ~faults ~seed:3 ~crash ~src:mon_a ~dst:mon_b
        ~cvm:id_a ~session:"example" ()
    with
    | Ok r -> r
    | Error msg -> failwith ("migration did not terminate: " ^ msg)
  in
  Printf.printf "[protocol] %d ticks, %d chunks sent (%d retransmits), \
                 %d crashes / %d recoveries\n"
    stats.Hypervisor.Migrator.ticks stats.Hypervisor.Migrator.chunks_sent
    stats.Hypervisor.Migrator.retransmits stats.Hypervisor.Migrator.crashes
    stats.Hypervisor.Migrator.recoveries;

  (* Exactly one owner, whichever way it went. *)
  (match
     Hypervisor.Migrator.handoff_clean ~src:mon_a ~dst:mon_b ~cvm:id_a
       ~session:"example"
   with
  | Ok `Dest -> print_endline "[handoff] destination owns the guest; source scrubbed"
  | Ok `Source -> print_endline "[handoff] source still owns the guest (aborted)"
  | Error msg -> failwith ("ownership violation: " ^ msg));

  match outcome with
  | Hypervisor.Migrator.Aborted reason ->
      (* Still safe: the guest is resumable in place on host A. *)
      Printf.printf "[host A] migration aborted (%s); resuming locally\n" reason;
      (match
         Zion.Monitor.run_vcpu mon_a ~hart:0 ~cvm:id_a ~vcpu:0
           ~max_steps:10_000_000
       with
      | Ok Zion.Monitor.Exit_shutdown -> ()
      | _ -> failwith "source resume failed");
      print_string (Zion.Monitor.console_output mon_a)
  | Hypervisor.Migrator.Committed id_b ->
      Printf.printf "[host B] committed as CVM %d; measurement %s\n" id_b
        (match Zion.Monitor.cvm_measurement mon_b ~cvm:id_b with
        | Some m when m = measurement -> "matches the source"
        | _ -> "MISMATCH");
      (match
         Zion.Monitor.run_vcpu mon_b ~hart:0 ~cvm:id_b ~vcpu:0
           ~max_steps:10_000_000
       with
      | Ok Zion.Monitor.Exit_shutdown -> ()
      | _ -> failwith "destination run failed");
      print_string (Zion.Monitor.console_output mon_b)
